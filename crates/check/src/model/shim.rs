//! The [`SyncShim`] instantiation that routes every operation through
//! the schedule explorer, plus [`CheckCell`] for race-checked
//! non-atomic data.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

use super::clock::happens_before;
use super::rt::{self, Loc, LocId, LocKind, OpKind, PendingOp, RunState, Tid};
use crate::sync::{AtomicIntShim, AtomicShim, MutexShim, Ordering, SyncShim};

/// Model instantiation of the shim family: use in place of
/// [`RealShim`](crate::sync::RealShim) inside a `model::explore` body.
#[derive(Debug, Clone, Copy)]
pub enum ModelShim {}

impl SyncShim for ModelShim {
    type AtomicUsize = ModelAtomic<usize>;
    type AtomicU64 = ModelAtomic<u64>;
    type AtomicU8 = ModelAtomic<u8>;
    type AtomicBool = ModelAtomic<bool>;
    type Mutex<T: Send + 'static> = ModelMutex<T>;
}

/// Conversion between a shim value type and the model's uniform `u64`
/// storage.
pub trait Widen: Copy + std::fmt::Debug + Send + 'static {
    /// Short type tag used in location labels.
    const LABEL: &'static str;
    /// Width mask applied after arithmetic.
    const MASK: u64;
    /// Widens to the storage word.
    fn to_u64(self) -> u64;
    /// Narrows from the storage word.
    fn from_u64(v: u64) -> Self;
}

impl Widen for usize {
    const LABEL: &'static str = "usize";
    const MASK: u64 = usize::MAX as u64;
    fn to_u64(self) -> u64 {
        self as u64
    }
    fn from_u64(v: u64) -> Self {
        v as usize
    }
}

impl Widen for u64 {
    const LABEL: &'static str = "u64";
    const MASK: u64 = u64::MAX;
    fn to_u64(self) -> u64 {
        self
    }
    fn from_u64(v: u64) -> Self {
        v
    }
}

impl Widen for u8 {
    const LABEL: &'static str = "u8";
    const MASK: u64 = u8::MAX as u64;
    fn to_u64(self) -> u64 {
        self as u64
    }
    fn from_u64(v: u64) -> Self {
        v as u8
    }
}

impl Widen for bool {
    const LABEL: &'static str = "bool";
    const MASK: u64 = 1;
    fn to_u64(self) -> u64 {
        self as u64
    }
    fn from_u64(v: u64) -> Self {
        v != 0
    }
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// A model atomic: a location id into the current run's store.
pub struct ModelAtomic<T> {
    loc: LocId,
    _marker: PhantomData<fn(T) -> T>,
}

// SAFETY: the payload is a plain index; all real state lives behind the
// run lock, so sharing/moving the handle across threads is sound.
unsafe impl<T> Send for ModelAtomic<T> {}
unsafe impl<T> Sync for ModelAtomic<T> {}

impl<T: Widen> ModelAtomic<T> {
    fn atomic(st: &mut RunState, loc: LocId) -> &mut u64 {
        match &mut st.locs[loc].kind {
            LocKind::Atomic { value } => value,
            _ => unreachable!("atomic op on non-atomic location"),
        }
    }

    fn pending(&self, kind: OpKind) -> PendingOp {
        PendingOp {
            kind,
            loc: Some(self.loc),
        }
    }
}

impl<T: Widen> AtomicShim<T> for ModelAtomic<T> {
    fn new(value: T) -> Self {
        let loc = rt::execute_inline(|st, _me| {
            let label = format!("{}#{}", T::LABEL, st.locs.len());
            st.alloc_loc(Loc {
                label,
                kind: LocKind::Atomic {
                    value: value.to_u64(),
                },
                sync: Default::default(),
                version: 0,
            })
        });
        Self {
            loc,
            _marker: PhantomData,
        }
    }

    fn load(&self, order: Ordering) -> T {
        let loc = self.loc;
        rt::yield_and_execute(self.pending(OpKind::Load), move |st, me| {
            st.begin_op(me);
            let value = *Self::atomic(st, loc);
            let version = st.locs[loc].version;
            if is_acquire(order) {
                let sync = st.locs[loc].sync.clone();
                st.threads[me].clock.join(&sync);
            }
            st.threads[me].last_load = Some((loc, version));
            let label = st.locs[loc].label.clone();
            st.trace_ev(me, format!("load({label}) -> {value} [{order:?}]"));
            T::from_u64(value)
        })
    }

    fn store(&self, value: T, order: Ordering) {
        let loc = self.loc;
        rt::yield_and_execute(self.pending(OpKind::Store), move |st, me| {
            st.begin_op(me);
            *Self::atomic(st, loc) = value.to_u64();
            st.locs[loc].version += 1;
            if is_release(order) {
                st.locs[loc].sync = st.threads[me].clock.clone();
            } else {
                // A relaxed store begins a new modification without a
                // release edge: it breaks the location's prior release
                // history for subsequent acquire loads.
                st.locs[loc].sync.clear();
            }
            let label = st.locs[loc].label.clone();
            st.trace_ev(me, format!("store({label}) := {value:?} [{order:?}]"));
        })
    }

    fn swap(&self, value: T, order: Ordering) -> T {
        self.rmw("swap", order, move |_old| value.to_u64())
    }

    fn compare_exchange(
        &self,
        current: T,
        new: T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<T, T> {
        let loc = self.loc;
        rt::yield_and_execute(self.pending(OpKind::Rmw), move |st, me| {
            st.begin_op(me);
            let old = *Self::atomic(st, loc);
            let label = st.locs[loc].label.clone();
            if old == current.to_u64() {
                *Self::atomic(st, loc) = new.to_u64();
                st.locs[loc].version += 1;
                if is_acquire(success) {
                    let sync = st.locs[loc].sync.clone();
                    st.threads[me].clock.join(&sync);
                }
                if is_release(success) {
                    let clock = st.threads[me].clock.clone();
                    st.locs[loc].sync.join(&clock);
                }
                st.trace_ev(me, format!("cas({label}) {old} -> {new:?} ok"));
                Ok(T::from_u64(old))
            } else {
                if is_acquire(failure) {
                    let sync = st.locs[loc].sync.clone();
                    st.threads[me].clock.join(&sync);
                }
                st.trace_ev(me, format!("cas({label}) failed, saw {old}"));
                Err(T::from_u64(old))
            }
        })
    }
}

impl<T: Widen> ModelAtomic<T> {
    /// Shared read-modify-write path. An RMW always reads the latest
    /// value; acquire/release edges per `order`; a relaxed RMW still
    /// *extends* the existing release history (C++ release sequences).
    fn rmw(&self, name: &'static str, order: Ordering, f: impl FnOnce(u64) -> u64) -> T {
        let loc = self.loc;
        rt::yield_and_execute(self.pending(OpKind::Rmw), move |st, me| {
            st.begin_op(me);
            let old = *Self::atomic(st, loc);
            let new = f(old) & T::MASK;
            *Self::atomic(st, loc) = new;
            st.locs[loc].version += 1;
            if is_acquire(order) {
                let sync = st.locs[loc].sync.clone();
                st.threads[me].clock.join(&sync);
            }
            if is_release(order) {
                let clock = st.threads[me].clock.clone();
                st.locs[loc].sync.join(&clock);
            }
            let label = st.locs[loc].label.clone();
            st.trace_ev(me, format!("{name}({label}) {old} -> {new} [{order:?}]"));
            T::from_u64(old)
        })
    }
}

macro_rules! model_atomic_int {
    ($prim:ty) => {
        impl AtomicIntShim<$prim> for ModelAtomic<$prim> {
            fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_add", order, move |old| {
                    old.wrapping_add(value.to_u64())
                })
            }
            fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_sub", order, move |old| {
                    old.wrapping_sub(value.to_u64()) & <$prim as Widen>::MASK
                })
            }
            fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_or", order, move |old| old | value.to_u64())
            }
            fn fetch_and(&self, value: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_and", order, move |old| old & value.to_u64())
            }
        }
    };
}

model_atomic_int!(usize);
model_atomic_int!(u64);
model_atomic_int!(u8);

/// A model mutex: the lock *acquisition* is a scheduling point (and a
/// disabled transition while held); the release happens inline at the
/// end of [`with`](MutexShim::with), since it commutes with every other
/// enabled operation.
pub struct ModelMutex<T> {
    loc: LocId,
    value: UnsafeCell<T>,
}

// SAFETY: the cell is only accessed by the thread holding the model
// lock, and only one model thread runs at a time.
unsafe impl<T: Send> Send for ModelMutex<T> {}
unsafe impl<T: Send> Sync for ModelMutex<T> {}

impl<T: Send + 'static> MutexShim<T> for ModelMutex<T> {
    fn new(value: T) -> Self {
        let loc = rt::execute_inline(|st, _me| {
            let label = format!("mutex#{}", st.locs.len());
            st.alloc_loc(Loc {
                label,
                kind: LocKind::Mutex { held_by: None },
                sync: Default::default(),
                version: 0,
            })
        });
        Self {
            loc,
            value: UnsafeCell::new(value),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let loc = self.loc;
        rt::yield_and_execute(
            PendingOp {
                kind: OpKind::Lock,
                loc: Some(loc),
            },
            move |st, me| {
                st.begin_op(me);
                match &mut st.locs[loc].kind {
                    LocKind::Mutex { held_by } => {
                        debug_assert!(held_by.is_none(), "scheduled a lock that is held");
                        *held_by = Some(me);
                    }
                    _ => unreachable!("lock on non-mutex location"),
                }
                let sync = st.locs[loc].sync.clone();
                st.threads[me].clock.join(&sync);
                let label = st.locs[loc].label.clone();
                st.trace_ev(me, format!("lock({label})"));
            },
        );
        // SAFETY: we hold the model lock (set just above) and only one
        // model thread runs at a time, so this access is exclusive.
        let out = f(unsafe { &mut *self.value.get() });
        rt::execute_inline(|st, me| {
            st.begin_op(me);
            match &mut st.locs[loc].kind {
                LocKind::Mutex { held_by } => {
                    debug_assert_eq!(*held_by, Some(me));
                    *held_by = None;
                }
                _ => unreachable!(),
            }
            st.locs[loc].sync = st.threads[me].clock.clone();
            st.locs[loc].version += 1;
            let label = st.locs[loc].label.clone();
            st.trace_ev(me, format!("unlock({label})"));
        });
        out
    }
}

/// Race-checked non-atomic storage, the model analogue of the
/// `UnsafeCell`s inside the runtime's job handoff.
///
/// Every access is a scheduling point carrying a happens-before
/// assertion: a write must be ordered after every prior access, a read
/// after the latest write. A violation is reported as a data race with
/// the usual replayable schedule. Keep access closures free of further
/// shim operations.
pub struct CheckCell<T> {
    loc: LocId,
    value: UnsafeCell<T>,
}

// SAFETY: physical access only ever happens on the single running model
// thread; logical exclusivity is what the race checker verifies.
unsafe impl<T: Send> Send for CheckCell<T> {}
unsafe impl<T: Send> Sync for CheckCell<T> {}

impl<T: Send + 'static> CheckCell<T> {
    /// Creates a cell; `label` names it in traces and race reports.
    pub fn new(label: &'static str, value: T) -> Self {
        let loc = rt::execute_inline(|st, _me| {
            let label = format!("{label}#{}", st.locs.len());
            st.alloc_loc(Loc {
                label,
                kind: LocKind::Cell {
                    last_write: None,
                    reads: Vec::new(),
                },
                sync: Default::default(),
                version: 0,
            })
        });
        Self {
            loc,
            value: UnsafeCell::new(value),
        }
    }

    fn access(&self, kind: OpKind) {
        let loc = self.loc;
        rt::yield_and_execute(
            PendingOp {
                kind,
                loc: Some(loc),
            },
            move |st, me| {
                st.begin_op(me);
                let me_clock = st.threads[me].clock.clone();
                let label = st.locs[loc].label.clone();
                let mut race_with: Option<(Tid, &'static str)> = None;
                match &mut st.locs[loc].kind {
                    LocKind::Cell { last_write, reads } => {
                        if let Some((wt, wc)) = last_write {
                            if !happens_before(wc, *wt, &me_clock) {
                                race_with = Some((*wt, "write"));
                            }
                        }
                        if kind == OpKind::CellWrite {
                            for (rt_, rc) in reads.iter() {
                                if !happens_before(rc, *rt_, &me_clock) {
                                    race_with = Some((*rt_, "read"));
                                }
                            }
                            *last_write = Some((me, me_clock.clone()));
                            reads.clear();
                        } else {
                            reads.push((me, me_clock.clone()));
                        }
                    }
                    _ => unreachable!("cell op on non-cell location"),
                }
                let verb = if kind == OpKind::CellWrite {
                    "write"
                } else {
                    "read"
                };
                st.trace_ev(me, format!("{verb}({label})"));
                if let Some((other, other_verb)) = race_with {
                    st.fail(
                        me,
                        format!(
                            "data race on {label}: t{me} {verb} is unordered with t{other} {other_verb}"
                        ),
                    );
                }
            },
        );
    }

    /// Reads the cell under a happens-before assertion.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.access(OpKind::CellRead);
        // SAFETY: single running model thread; logical ordering was
        // just asserted by the race checker.
        f(unsafe { &*self.value.get() })
    }

    /// Writes the cell under a happens-before assertion.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.access(OpKind::CellWrite);
        // SAFETY: as in `with`; writes additionally asserted exclusive
        // against all prior reads.
        f(unsafe { &mut *self.value.get() })
    }
}
