//! Planted-bug self-tests: deliberately broken variants of the shipped
//! protocols that the checker must refute.
//!
//! A model checker that silently explores too little is worse than no
//! checker, so each ported target has a mutated twin here — the claim
//! `fetch_add` split into a load+store, a drop counter incremented
//! non-atomically, a latch published with `Relaxed` — and CI requires
//! the explorer to find each bug *and* hand back a schedule that
//! reproduces it on replay ([`model::assert_fails`] checks both).
//!
//! The buggy twins are local copies on the model shim: the real cores
//! (explored by the `futurerd-trace check` suite) stay unmutated.

use std::sync::Arc;

use crate::model::{self, thread, CheckCell, Config, Counterexample, ModelAtomic, ModelMutex};
use crate::sync::{AtomicIntShim, AtomicShim, MutexShim, Ordering};

/// `ChunkIndex::claim` with the fetch-add torn into a load + store:
/// two threads can observe the same cursor and claim the same unit.
fn buggy_claim(next: &ModelAtomic<usize>, len: usize) -> Option<usize> {
    let cur = next.load(Ordering::Acquire);
    if cur >= len {
        return None;
    }
    next.store(cur + 1, Ordering::Release); // BUG: read-modify-write torn apart
    Some(cur)
}

/// Body: two workers drain a 2-unit index; every unit must be claimed
/// exactly once.
pub fn double_claim_body() {
    const LEN: usize = 2;
    let next = Arc::new(ModelAtomic::<usize>::new(0));
    let units: Arc<Vec<ModelAtomic<usize>>> =
        Arc::new((0..LEN).map(|_| ModelAtomic::new(0)).collect());
    let worker = {
        let next = Arc::clone(&next);
        let units = Arc::clone(&units);
        move || {
            while let Some(unit) = buggy_claim(&next, LEN) {
                let prev = units[unit].fetch_add(1, Ordering::AcqRel);
                assert_eq!(prev, 0, "unit {unit} claimed twice");
            }
        }
    };
    let other = worker.clone();
    let t = thread::spawn(other);
    worker();
    t.join();
}

/// The timeline ring's lossy push with the drop counter incremented via
/// load + store instead of under the lock: concurrent drops are lost.
pub fn ring_drop_miscount_body() {
    const CAPACITY: usize = 1;
    let intervals = Arc::new(ModelMutex::<Vec<u64>>::new(Vec::new()));
    let dropped = Arc::new(ModelAtomic::<u64>::new(0));
    let push = {
        let intervals = Arc::clone(&intervals);
        let dropped = Arc::clone(&dropped);
        move |v: u64| {
            let full = intervals.with(|ring| {
                if ring.len() >= CAPACITY {
                    true
                } else {
                    ring.push(v);
                    false
                }
            });
            if full {
                // BUG: the real ring counts drops inside the lock.
                let seen = dropped.load(Ordering::Acquire);
                dropped.store(seen + 1, Ordering::Release);
            }
        }
    };
    push(0); // fill the ring before any concurrency
    let pusher = push.clone();
    let t = thread::spawn(move || pusher(1));
    push(2);
    t.join();
    let kept = intervals.with(|ring| ring.len()) as u64;
    let lost = dropped.load(Ordering::Acquire);
    assert_eq!(
        kept + lost,
        3,
        "ring accounting lost a push: kept {kept}, dropped {lost}"
    );
}

/// A metrics counter bumped with load + store: one of two concurrent
/// `counter_add(1)`s vanishes and the merged snapshot under-reports.
pub fn registry_lost_update_body() {
    let counter = Arc::new(ModelAtomic::<u64>::new(0));
    let add = {
        let counter = Arc::clone(&counter);
        move || {
            // BUG: the real registry mutates under its lock.
            let seen = counter.load(Ordering::Acquire);
            counter.store(seen + 1, Ordering::Release);
        }
    };
    let adder = add.clone();
    let t = thread::spawn(adder);
    add();
    t.join();
    assert_eq!(
        counter.load(Ordering::Acquire),
        2,
        "snapshot lost an update"
    );
}

/// A spin latch whose `set` uses `Relaxed`: the waiter observes the
/// flag without inheriting the publisher's writes — a data race on the
/// result cell, caught by the happens-before checker.
pub fn relaxed_latch_race_body() {
    let set = Arc::new(ModelAtomic::<bool>::new(false));
    let result = Arc::new(CheckCell::new("result", 0u64));
    let t = {
        let set = Arc::clone(&set);
        let result = Arc::clone(&result);
        thread::spawn(move || {
            result.with_mut(|r| *r = 42);
            set.store(true, Ordering::Relaxed); // BUG: must be Release
        })
    };
    while !set.load(Ordering::Acquire) {}
    let got = result.with(|r| *r);
    assert_eq!(got, 42);
    t.join();
}

fn planted_config() -> Config {
    Config::exhaustive()
}

/// Explores the torn-claim twin; must catch the double claim.
pub fn planted_double_claim() -> Counterexample {
    model::assert_fails(&planted_config(), "planted:double-claim", double_claim_body)
}

/// Explores the torn-drop-counter twin; must catch the lost drop.
pub fn planted_ring_drop_miscount() -> Counterexample {
    model::assert_fails(
        &planted_config(),
        "planted:ring-drop-miscount",
        ring_drop_miscount_body,
    )
}

/// Explores the torn-counter twin; must catch the lost update.
pub fn planted_registry_lost_update() -> Counterexample {
    model::assert_fails(
        &planted_config(),
        "planted:registry-lost-update",
        registry_lost_update_body,
    )
}

/// Explores the relaxed-latch twin; must catch the data race.
pub fn planted_relaxed_latch_race() -> Counterexample {
    model::assert_fails(
        &planted_config(),
        "planted:relaxed-latch-race",
        relaxed_latch_race_body,
    )
}

/// One planted-bug self-test: explores a broken twin and returns the
/// counterexample the explorer must find.
pub type PlantedCheck = fn() -> Counterexample;

/// Every planted bug, for the CLI's `check` subcommand.
pub fn all() -> Vec<(&'static str, PlantedCheck)> {
    vec![
        ("double-claim", planted_double_claim as PlantedCheck),
        ("ring-drop-miscount", planted_ring_drop_miscount),
        ("registry-lost-update", planted_registry_lost_update),
        ("relaxed-latch-race", planted_relaxed_latch_race),
    ]
}

/// The planted bodies by name, for fixture replay tests.
pub fn body(name: &str) -> Option<fn()> {
    match name {
        "double-claim" => Some(double_claim_body as fn()),
        "ring-drop-miscount" => Some(ring_drop_miscount_body),
        "registry-lost-update" => Some(registry_lost_update_body),
        "relaxed-latch-race" => Some(relaxed_latch_race_body),
        _ => None,
    }
}
