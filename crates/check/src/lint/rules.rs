//! The four invariant rules, each a pass over scanned files.

use super::scan::ScannedFile;
use super::{LintConfig, Rule, Violation};

fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            out.push(start);
        }
        from = end;
    }
    out
}

/// How many lines above an `unsafe` token a SAFETY comment may sit.
const SAFETY_WINDOW: usize = 12;

/// Rule 1: `unsafe` only in allowlisted files, each use under a
/// `// SAFETY:` (or `# Safety` doc section) comment.
pub(super) fn check_unsafe(file: &ScannedFile, config: &LintConfig, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || word_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        let allowed = config
            .unsafe_files
            .iter()
            .any(|suffix| file.path.ends_with(suffix.as_str()));
        if !allowed {
            out.push(Violation {
                rule: Rule::UnsafeAllowlist,
                path: file.path.clone(),
                line: i + 1,
                message: format!(
                    "`unsafe` in a file outside the allowlist ({}); move the code into an \
                     allowlisted module or extend LintConfig::unsafe_files deliberately",
                    file.path
                ),
            });
            continue;
        }
        let lo = i.saturating_sub(SAFETY_WINDOW);
        let documented = file.lines[lo..=i]
            .iter()
            .any(|l| l.comment.contains("SAFETY") || l.comment.contains("# Safety"));
        if !documented {
            out.push(Violation {
                rule: Rule::SafetyComment,
                path: file.path.clone(),
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` comment within the preceding 12 lines"
                    .to_string(),
            });
        }
    }
}

/// Is `text` shaped like an observability name: dotted, lowercase
/// identifier segments, possibly with `{…}` format placeholders?
fn is_namelike(text: &str) -> bool {
    if text.len() > 64 || !text.contains('.') {
        return false;
    }
    // A name may open with a `{prefix}` placeholder (call sites that take
    // the leading segment as a parameter), otherwise it must start with a
    // lowercase identifier character.
    if !text
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '{')
    {
        return false;
    }
    if text.ends_with('.') || text.contains("..") {
        return false;
    }
    let mut has_alpha = false;
    let mut has_sep = false;
    let mut depth = 0u32;
    for c in text.chars() {
        match c {
            '{' => depth += 1,
            '}' => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            'a'..='z' | '0'..='9' | '_' if depth == 0 => has_alpha |= c.is_ascii_lowercase(),
            // Only a dot *between* segments makes a name; a dot inside a
            // placeholder (`"{:.3}s"` format specs) does not.
            '.' if depth == 0 => has_sep = true,
            _ if depth > 0 => {} // anything inside a placeholder
            _ => return false,
        }
    }
    has_alpha && has_sep && depth == 0
}

/// `{…}` placeholders → `*`, so `freeze.assist.units.{label}` matches a
/// manifest entry `freeze.assist.units.*`.
fn normalize(text: &str) -> String {
    let mut out = String::new();
    let mut depth = 0u32;
    for c in text.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth > 0 => {}
            _ => out.push(c),
        }
    }
    out
}

fn manifest_matches(entry: &str, name: &str) -> bool {
    let es: Vec<&str> = entry.split('.').collect();
    let ns: Vec<&str> = name.split('.').collect();
    if es.len() != ns.len() {
        return false;
    }
    es.iter()
        .zip(ns.iter())
        .all(|(e, n)| *e == "*" || *n == "*" || e == n)
}

/// Rule 2: every name-shaped string literal must appear in the
/// `obs::names` manifest (or the explicit non-name allowlist). This is
/// the sweep that makes a typo'd `Span::enter("frezee")`-style stray
/// name a lint error instead of a silently minted metric.
pub(super) fn check_obs_names(
    file: &ScannedFile,
    manifest: &[&str],
    config: &LintConfig,
    out: &mut Vec<Violation>,
) {
    for lit in &file.strings {
        if lit.in_test || !is_namelike(&lit.text) {
            continue;
        }
        let name = normalize(&lit.text);
        if config.name_allow.iter().any(|a| manifest_matches(a, &name)) {
            continue;
        }
        if manifest.iter().any(|e| manifest_matches(e, &name)) {
            continue;
        }
        out.push(Violation {
            rule: Rule::ObsName,
            path: file.path.clone(),
            line: lit.line + 1,
            message: format!(
                "dotted name literal \"{}\" is not in the obs::names manifest \
                 (add it there, or to LintConfig::name_allow if it is not an obs name)",
                lit.text
            ),
        });
    }
}

const ATOMIC_METHODS: [&str; 9] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
];

/// Receiver field of the atomic call containing byte offset `pos` in
/// `joined` (a few lines of code joined together).
fn relaxed_receiver(joined: &str, pos: usize) -> Option<String> {
    let head = &joined[..pos];
    let mut best: Option<(usize, usize)> = None; // (dot position, method)
    for m in ATOMIC_METHODS {
        let pat = format!(".{m}");
        let mut from = 0;
        while let Some(p) = head[from..].find(&pat) {
            let at = from + p;
            // Require an open paren right after the method name
            // (possibly with whitespace / newline).
            let after = head[at + pat.len()..].trim_start();
            if after.starts_with('(') || after.is_empty() {
                match best {
                    Some((b, _)) if b >= at => {}
                    _ => best = Some((at, pat.len())),
                }
            }
            from = at + pat.len();
        }
    }
    let (dot, _) = best?;
    // The field may sit on its own line (`.executed\n.fetch_add(…)`):
    // skip the whitespace between it and the method's dot.
    let ident: String = head[..dot]
        .trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    let ident: String = ident.chars().rev().collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Rule 3: `Ordering::Relaxed` is forbidden on claim-protocol and latch
/// atomics. Policed per file; exceptions are allowlisted by
/// `(file suffix, receiver field)` — stat counters whose values never
/// guard memory.
pub(super) fn check_relaxed(file: &ScannedFile, config: &LintConfig, out: &mut Vec<Violation>) {
    let policed = config
        .relaxed_files
        .iter()
        .any(|suffix| file.path.ends_with(suffix.as_str()));
    if !policed {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(col) = line.code.find("Ordering::Relaxed") else {
            continue;
        };
        // Join up to 3 lines of context so multi-line calls attribute.
        let lo = i.saturating_sub(2);
        let mut joined = String::new();
        for l in &file.lines[lo..i] {
            joined.push_str(&l.code);
            joined.push('\n');
        }
        let pos = joined.len() + col;
        joined.push_str(&line.code);
        let receiver = relaxed_receiver(&joined, pos);
        let allowed = receiver.as_deref().is_some_and(|field| {
            config
                .relaxed_allow
                .iter()
                .any(|(suffix, f)| file.path.ends_with(suffix.as_str()) && f == field)
        });
        if !allowed {
            let who = receiver.unwrap_or_else(|| "<unattributed>".into());
            out.push(Violation {
                rule: Rule::RelaxedOrdering,
                path: file.path.clone(),
                line: i + 1,
                message: format!(
                    "Ordering::Relaxed on `{who}` in a claim-protocol/latch file; use \
                     Acquire/Release/AcqRel, or allowlist the field in LintConfig::relaxed_allow \
                     if it is a pure stat counter"
                ),
            });
        }
    }
}

/// Rule 4: `Instant::now` only at the allowlisted measurement edges —
/// everything else must flow through futurerd-obs so time stays
/// observable and mockable.
pub(super) fn check_instant(file: &ScannedFile, config: &LintConfig, out: &mut Vec<Violation>) {
    let allowed = config
        .instant_allow
        .iter()
        .any(|prefix| file.path.starts_with(prefix.as_str()));
    if allowed {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("Instant::now") {
            out.push(Violation {
                rule: Rule::InstantNow,
                path: file.path.clone(),
                line: i + 1,
                message: "Instant::now outside the allowlisted measurement edges \
                          (futurerd-obs, bench); record through obs spans instead"
                    .to_string(),
            });
        }
    }
}
