//! Token-level source scanning: comment/string-aware line views.
//!
//! This is deliberately not a Rust parser. The linter needs exactly
//! three things a lexer-grade pass can provide: code text with comments
//! and string *contents* removed (so token searches don't false-match),
//! the comment text per line (for `// SAFETY:` checks), and the string
//! literals in order (for the obs-name manifest check) — each tagged
//! with whether it sits inside a `#[cfg(test)]` item.

/// One scanned source line.
pub struct Line {
    /// Source text with comments and string/char contents blanked
    /// (quotes preserved, length not preserved for comments).
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// Inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A string literal with its location.
pub struct StrLit {
    /// 0-based line of the opening quote.
    pub line: usize,
    /// Literal contents (escapes left as written).
    pub text: String,
    /// Inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A scanned file.
pub struct ScannedFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Per-line views.
    pub lines: Vec<Line>,
    /// All string literals in order of appearance.
    pub strings: Vec<StrLit>,
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

/// Scans `text` (the contents of `path`) into line views.
pub fn scan(path: &str, text: &str) -> ScannedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut strings: Vec<StrLit> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut cur_str = String::new();
    let mut str_start_line = 0usize;
    let mut state = State::Code;

    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line_no = 0usize;

    macro_rules! flush_line {
        () => {{
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            line_no += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            if let State::Str { .. } = state {
                // Multi-line string: keep accumulating, blank the code.
                cur_str.push('\n');
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str { raw_hashes: None };
                        str_start_line = line_no;
                        cur_str.clear();
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        // r"..."  r#"..."#  br"..."  b"..."
                        let mut j = i;
                        let mut has_r = false;
                        while matches!(chars.get(j), Some('r') | Some('b')) {
                            has_r |= chars[j] == 'r';
                            code.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        debug_assert_eq!(chars.get(j), Some(&'"'));
                        code.push('"');
                        j += 1;
                        // A plain byte string (no `r`) still processes
                        // escapes like a normal string.
                        state = State::Str {
                            raw_hashes: has_r.then_some(hashes),
                        };
                        str_start_line = line_no;
                        cur_str.clear();
                        i = j;
                    }
                    '\'' => {
                        // Char literal vs lifetime. A lifetime is `'`
                        // followed by an identifier NOT closed by `'`.
                        if let Some((consumed, blanked)) = char_literal_len(&chars, i) {
                            code.push('\'');
                            for _ in 0..blanked {
                                code.push(' ');
                            }
                            code.push('\'');
                            i += consumed;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes: None } => {
                if c == '\\' {
                    cur_str.push(c);
                    if let Some(&esc) = chars.get(i + 1) {
                        cur_str.push(esc);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    strings.push(StrLit {
                        line: str_start_line,
                        text: std::mem::take(&mut cur_str),
                        in_test: false,
                    });
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur_str.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str {
                raw_hashes: Some(hashes),
            } => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    strings.push(StrLit {
                        line: str_start_line,
                        text: std::mem::take(&mut cur_str),
                        in_test: false,
                    });
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    cur_str.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    let _ = line_no; // final flush; counter no longer needed

    let mut file = ScannedFile {
        path: path.to_string(),
        lines,
        strings,
    };
    mark_test_regions(&mut file);
    file
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Accept `r"` `r#"` `b"` `br#"` …: [rb]{1,2} '#'* '"'. Guard
    // against identifiers ending in r/b by requiring the previous char
    // to not be part of an identifier.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    while matches!(chars.get(j), Some('r') | Some('b')) {
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if chars.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}

/// If position `i` (at a `'`) starts a char literal, returns
/// `(chars consumed, interior chars blanked)`; `None` for a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let next = chars.get(i + 1)?;
    if *next == '\\' {
        // Escaped char literal: find the closing quote.
        let mut j = i + 2;
        if chars.get(j) == Some(&'u') {
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
        } else {
            j += 1;
        }
        if chars.get(j) == Some(&'\'') {
            return Some((j - i + 1, j - i - 1));
        }
        return None;
    }
    if (next.is_alphanumeric() || *next == '_') && chars.get(i + 2) != Some(&'\'') {
        // `'static`, `'a` — a lifetime.
        return None;
    }
    if chars.get(i + 2) == Some(&'\'') {
        return Some((3, 1));
    }
    None
}

/// Marks lines (and the string literals on them) inside `#[cfg(test)]`
/// items. Heuristic: from the attribute, the item extends to the end of
/// its first balanced `{…}` block, or to a `;` at depth 0 if one comes
/// first (attribute on a brace-less item).
fn mark_test_regions(file: &mut ScannedFile) {
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        if !file.lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        while j < n {
            file.lines[j].in_test = true;
            let mut terminated = false;
            for ch in file.lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            terminated = true;
                        }
                    }
                    ';' if !started && depth == 0 && j > i => {
                        terminated = true;
                    }
                    _ => {}
                }
            }
            if terminated {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    for lit in &mut file.strings {
        if file.lines.get(lit.line).is_some_and(|l| l.in_test) {
            lit.in_test = true;
        }
    }
}
