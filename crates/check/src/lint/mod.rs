//! The workspace invariant linter behind `futurerd-trace lint`.
//!
//! A token-level pass (comment/string-aware, no rustc internals) over
//! `crates/*/src`, enforcing four repo invariants:
//!
//! 1. **unsafe allowlist** — `unsafe` only in the files that earned it,
//!    and every use sits under a `// SAFETY:` comment.
//! 2. **obs name manifest** — every dotted stage/metric name literal
//!    appears in the `obs::names` manifest; typos can't mint silent
//!    stray metrics.
//! 3. **ordering policy** — `Ordering::Relaxed` is banned on the
//!    claim-protocol and latch atomics (allowlisted stat-counter fields
//!    excepted).
//! 4. **time containment** — `Instant::now` only inside futurerd-obs
//!    and the bench harness.
//!
//! The manifest is passed in by the caller (the CLI hands over
//! `futurerd_obs::names::MANIFEST`) so this crate stays
//! zero-dependency while obs remains the single source of truth.

mod rules;
mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

/// Which rule a violation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` outside the allowlisted file set.
    UnsafeAllowlist,
    /// `unsafe` without a `// SAFETY:` comment.
    SafetyComment,
    /// Dotted name literal missing from the obs manifest.
    ObsName,
    /// `Ordering::Relaxed` on a policed atomic.
    RelaxedOrdering,
    /// `Instant::now` outside the measurement edges.
    InstantNow,
}

impl Rule {
    /// Every rule, for "did the self-test trip them all" checks.
    pub const ALL: [Rule; 5] = [
        Rule::UnsafeAllowlist,
        Rule::SafetyComment,
        Rule::ObsName,
        Rule::RelaxedOrdering,
        Rule::InstantNow,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::UnsafeAllowlist => "unsafe-allowlist",
            Rule::SafetyComment => "safety-comment",
            Rule::ObsName => "obs-name",
            Rule::RelaxedOrdering => "relaxed-ordering",
            Rule::InstantNow => "instant-now",
        };
        f.write_str(s)
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What and why.
    pub message: String,
}

/// Lint results over a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in file/line order.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One line per violation plus a summary, ready to print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.path, v.line, v.rule, v.message
            ));
        }
        out.push_str(&format!(
            "lint: {} file(s) scanned, {} violation(s)\n",
            self.files_scanned,
            self.violations.len()
        ));
        out
    }
}

/// Linter policy. [`LintConfig::repo`] is the checked-in policy for
/// this workspace; tests construct custom ones.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Path suffixes where `unsafe` is permitted.
    pub unsafe_files: Vec<String>,
    /// Path suffixes where `Ordering::Relaxed` is policed.
    pub relaxed_files: Vec<String>,
    /// `(path suffix, field)` pairs exempt from the Relaxed ban.
    pub relaxed_allow: Vec<(String, String)>,
    /// Path prefixes where `Instant::now` is permitted.
    pub instant_allow: Vec<String>,
    /// Normalized dotted literals that are *not* obs names (file
    /// extensions and the like).
    pub name_allow: Vec<String>,
}

fn strings(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

impl LintConfig {
    /// The policy for this repository.
    pub fn repo() -> Self {
        Self {
            unsafe_files: strings(&[
                // The work-stealing pool's type-erased job handoff.
                "runtime/src/pool/job.rs",
                "runtime/src/pool/mod.rs",
                // Scoped-spawn lifetime transmute lives in mod.rs; the
                // deque is mutex-based and clean outside tests.
                // Zero-copy JSON string scanning.
                "bench/src/json.rs",
                // The model checker's own cells (single-runner baton
                // protocol makes them exclusive).
                "check/src/model/shim.rs",
            ]),
            relaxed_files: strings(&[
                "core/src/parallel/assist.rs",
                "runtime/src/pool/latch.rs",
                "runtime/src/pool/mod.rs",
                "runtime/src/pool/job.rs",
            ]),
            relaxed_allow: vec![
                // Contended-claim miss tally: observability only, never
                // guards memory.
                ("core/src/parallel/assist.rs".into(), "misses".into()),
                // Per-worker stat counters exported as gauges.
                ("runtime/src/pool/mod.rs".into(), "executed".into()),
                ("runtime/src/pool/mod.rs".into(), "steals".into()),
                ("runtime/src/pool/mod.rs".into(), "injected".into()),
            ],
            instant_allow: strings(&[
                // The observability layer is where time is measured.
                "crates/obs/",
                // Bench harness and CLI measure wall clocks by design.
                "crates/bench/",
                // Fuzz budget deadline.
                "crates/fuzz/src/lib.rs",
                // Session feeds obs::record_stage with measured spans.
                "crates/futurerd/src/session.rs",
            ]),
            name_allow: strings(&[]),
        }
    }
}

/// Lints in-memory `(path, contents)` pairs — the engine behind both
/// [`lint_workspace`] and the seeded self-tests.
pub fn lint_sources(files: &[(String, String)], manifest: &[&str], config: &LintConfig) -> Report {
    let mut report = Report::default();
    for (path, text) in files {
        let scanned = scan::scan(path, text);
        rules::check_unsafe(&scanned, config, &mut report.violations);
        rules::check_obs_names(&scanned, manifest, config, &mut report.violations);
        rules::check_relaxed(&scanned, config, &mut report.violations);
        rules::check_instant(&scanned, config, &mut report.violations);
        report.files_scanned += 1;
    }
    report
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace
/// root).
pub fn lint_workspace(
    root: &Path,
    manifest: &[&str],
    config: &LintConfig,
) -> std::io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, text));
        }
    }
    Ok(lint_sources(&files, manifest, config))
}

/// Seeded-violation self-test: fabricated sources that must trip every
/// rule. Returns the report; callers assert each expected rule fired.
/// Wired into CI so a silently broken linter cannot pass the gate.
pub fn seeded_violations(manifest: &[&str], config: &LintConfig) -> Report {
    let files = vec![
        (
            "crates/core/src/parallel/assist.rs".to_string(),
            "pub fn claim(&self) {\n    self.next.fetch_add(1, Ordering::Relaxed);\n}\n"
                .to_string(),
        ),
        (
            "crates/store/src/sidecar.rs".to_string(),
            "fn f() { let _x = unsafe { core::ptr::null::<u8>().read() }; }\n".to_string(),
        ),
        (
            "crates/runtime/src/pool/job.rs".to_string(),
            "fn g(p: *const u8) -> u8 { unsafe { *p } }\n".to_string(),
        ),
        (
            "crates/futurerd/src/session.rs".to_string(),
            "fn h() { futurerd_obs::counter_add(\"sesion.ingest.evnts\", 1); }\n".to_string(),
        ),
        (
            "crates/core/src/parallel/mod.rs".to_string(),
            "fn t() { let _ = std::time::Instant::now(); }\n".to_string(),
        ),
    ];
    lint_sources(&files, manifest, config)
}
