//! The sync shim: one trait family over the primitives the lock-free
//! core uses, with a zero-cost production instantiation.
//!
//! Protocol cores in `futurerd-core`/`futurerd-runtime`/`futurerd-obs`
//! are generic over [`SyncShim`]. In normal builds they are aliased at
//! [`RealShim`], whose associated types are `#[repr(transparent)]`
//! newtypes over `std::sync` with every method `#[inline(always)]` — the
//! optimizer sees exactly the code that was there before the shim was
//! introduced. The model checker instantiates the same cores at
//! `futurerd_check::model::ModelShim`, where each operation yields to
//! the schedule explorer instead.
//!
//! Design notes:
//!
//! * The mutex shim exposes a closure API ([`MutexShim::with`]) rather
//!   than a guard, so implementations don't need generic associated
//!   lifetimes and the model can bracket the critical section exactly.
//! * Orderings are passed through verbatim ([`Ordering`] is re-exported
//!   from std). The model executes sequentially-consistently but tracks
//!   acquire/release edges for its happens-before clocks, so weakening
//!   an ordering in production code weakens what the checker assumes.

use std::sync::atomic;

pub use std::sync::atomic::Ordering;

/// Family of synchronization primitive types a protocol core is written
/// against.
///
/// Implementations are uninhabited marker enums ([`RealShim`],
/// `model::ModelShim`) — the trait is only ever used at the type level.
pub trait SyncShim: 'static {
    /// Shimmed `AtomicUsize`.
    type AtomicUsize: AtomicIntShim<usize>;
    /// Shimmed `AtomicU64`.
    type AtomicU64: AtomicIntShim<u64>;
    /// Shimmed `AtomicU8`.
    type AtomicU8: AtomicIntShim<u8>;
    /// Shimmed `AtomicBool`.
    type AtomicBool: AtomicShim<bool>;
    /// Shimmed mutex holding a `T`.
    type Mutex<T: Send + 'static>: MutexShim<T>;
}

/// Operations common to all shimmed atomics.
pub trait AtomicShim<T: Copy>: Send + Sync + 'static {
    /// Creates the atomic with an initial value.
    fn new(value: T) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> T;
    /// Atomic store.
    fn store(&self, value: T, order: Ordering);
    /// Atomic swap; returns the previous value.
    fn swap(&self, value: T, order: Ordering) -> T;
    /// Atomic compare-exchange; `Ok(previous)` on success, `Err(actual)`
    /// on failure.
    fn compare_exchange(
        &self,
        current: T,
        new: T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<T, T>;
}

/// Integer read-modify-write operations on shimmed atomics.
pub trait AtomicIntShim<T: Copy>: AtomicShim<T> {
    /// Atomic wrapping add; returns the previous value.
    fn fetch_add(&self, value: T, order: Ordering) -> T;
    /// Atomic wrapping subtract; returns the previous value.
    fn fetch_sub(&self, value: T, order: Ordering) -> T;
    /// Atomic bitwise OR; returns the previous value.
    fn fetch_or(&self, value: T, order: Ordering) -> T;
    /// Atomic bitwise AND; returns the previous value.
    fn fetch_and(&self, value: T, order: Ordering) -> T;
}

/// Closure-scoped mutex shim.
///
/// The model implementation treats poisoning as impossible (a panicking
/// model thread aborts the whole execution), so the real implementation
/// also ignores poison — matching how the runtime already treats its
/// parking-lot locks.
pub trait MutexShim<T: Send>: Send + Sync + 'static {
    /// Creates the mutex holding `value`.
    fn new(value: T) -> Self;
    /// Runs `f` with the lock held.
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
}

/// Production instantiation: transparent newtypes over `std::sync`.
#[derive(Debug, Clone, Copy)]
pub enum RealShim {}

impl SyncShim for RealShim {
    type AtomicUsize = RealAtomicUsize;
    type AtomicU64 = RealAtomicU64;
    type AtomicU8 = RealAtomicU8;
    type AtomicBool = RealAtomicBool;
    type Mutex<T: Send + 'static> = RealMutex<T>;
}

macro_rules! real_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Transparent newtype over the std atomic of the same width.
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct $name($std);

        impl AtomicShim<$prim> for $name {
            #[inline(always)]
            fn new(value: $prim) -> Self {
                Self(<$std>::new(value))
            }
            #[inline(always)]
            fn load(&self, order: Ordering) -> $prim {
                self.0.load(order)
            }
            #[inline(always)]
            fn store(&self, value: $prim, order: Ordering) {
                self.0.store(value, order)
            }
            #[inline(always)]
            fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.0.swap(value, order)
            }
            #[inline(always)]
            fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.0.compare_exchange(current, new, success, failure)
            }
        }
    };
}

macro_rules! real_atomic_int {
    ($name:ident, $prim:ty) => {
        impl AtomicIntShim<$prim> for $name {
            #[inline(always)]
            fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.0.fetch_add(value, order)
            }
            #[inline(always)]
            fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.0.fetch_sub(value, order)
            }
            #[inline(always)]
            fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                self.0.fetch_or(value, order)
            }
            #[inline(always)]
            fn fetch_and(&self, value: $prim, order: Ordering) -> $prim {
                self.0.fetch_and(value, order)
            }
        }
    };
}

real_atomic!(RealAtomicUsize, atomic::AtomicUsize, usize);
real_atomic!(RealAtomicU64, atomic::AtomicU64, u64);
real_atomic!(RealAtomicU8, atomic::AtomicU8, u8);
real_atomic!(RealAtomicBool, atomic::AtomicBool, bool);
real_atomic_int!(RealAtomicUsize, usize);
real_atomic_int!(RealAtomicU64, u64);
real_atomic_int!(RealAtomicU8, u8);

/// Transparent newtype over `std::sync::Mutex`, poison-transparent.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct RealMutex<T>(std::sync::Mutex<T>);

impl<T: Send + 'static> MutexShim<T> for RealMutex<T> {
    #[inline(always)]
    fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    #[inline(always)]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.0.lock().unwrap_or_else(|poison| poison.into_inner());
        f(&mut guard)
    }
}
