//! Schedule-exploration model checking and invariant linting for futurerd.
//!
//! This crate sits at the very bottom of the workspace dependency graph
//! (it depends on nothing, not even the vendored stand-ins) and provides
//! three things:
//!
//! * [`sync`] — a shim layer over the handful of `std::sync` primitives
//!   the lock-free core uses. Production code is written against the
//!   [`sync::SyncShim`] trait and instantiated at [`sync::RealShim`],
//!   whose newtypes are `#[repr(transparent)]`, `#[inline(always)]`
//!   wrappers that compile to the real primitives — zero cost in normal
//!   builds. Under the checker the same code is instantiated at
//!   [`model::ModelShim`], where every load/store/RMW/lock becomes a
//!   scheduling point.
//!
//! * [`model`] — a mini-loom: a depth-first schedule explorer that runs a
//!   closure repeatedly, enumerating every interleaving of its
//!   [`model::thread::spawn`]ed threads at small configs (2–3 threads),
//!   with DPOR-style sleep-set pruning, optional preemption bounding, and
//!   vector-clock based data-race detection on [`model::CheckCell`]s.
//!   Failures come back as a replayable schedule plus an op-level trace.
//!
//! * [`lint`] — a token-level workspace linter (no rustc internals) that
//!   enforces the repo invariants that otherwise live only in docs:
//!   `unsafe` only in allowlisted files and always under a `// SAFETY:`
//!   comment, observability names drawn from the `obs::names` manifest,
//!   `Ordering::Relaxed` banned on claim-protocol/latch atomics, and
//!   `Instant::now` confined to the obs/bench measurement edges.
//!
//! [`selftest`] holds the planted-bug protocol variants: deliberately
//! broken copies of the shipped protocols that the checker must refute,
//! proving the exploration actually covers the racy interleavings.

#![warn(missing_docs)]

pub mod lint;
pub mod model;
pub mod selftest;
pub mod sync;
