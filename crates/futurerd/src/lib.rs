//! # futurerd
//!
//! One-stop facade over the FutureRD reproduction (*Efficient Race Detection
//! with Futures*, Utterback, Agrawal, Fineman, Lee — PPoPP 2019): write a
//! task-parallel program with futures against a single entry point, run it
//! under the paper's on-the-fly determinacy-race detector, and get back the
//! program's value plus a [`RaceReport`].
//!
//! The underlying crates stay available for fine-grained use (`futurerd-core`
//! for the detectors, `futurerd-runtime` for the executor and thread pool,
//! `futurerd-dag` for the dag model); this crate is the stable surface that
//! examples, integration tests, and downstream workloads program against.
//!
//! ## Quick start
//!
//! ```
//! // A program with a determinacy race: the main task reads a buffer
//! // element before joining the future that writes it.
//! let detection = futurerd::detect_structured(|cx| {
//!     let mut buffer = futurerd::ShadowArray::new(cx, 4, 0u32);
//!     let producer = cx.create_future(|cx| {
//!         for i in 0..4 {
//!             buffer.set(cx, i, 7);
//!         }
//!     });
//!     let early = buffer.get(cx, 0); // races with the producer's writes
//!     cx.get_future(producer);
//!     early
//! });
//! assert_eq!(detection.race_count(), 1);
//!
//! // Joining first removes the race.
//! let detection = futurerd::detect_structured(|cx| {
//!     let mut buffer = futurerd::ShadowArray::new(cx, 4, 0u32);
//!     let producer = cx.create_future(|cx| {
//!         for i in 0..4 {
//!             buffer.set(cx, i, 7);
//!         }
//!     });
//!     cx.get_future(producer);
//!     buffer.get(cx, 0)
//! });
//! assert!(detection.is_race_free());
//! assert_eq!(detection.value, 7);
//! ```
//!
//! ## Choosing the algorithm and analysis level
//!
//! [`detect_structured`] uses **MultiBags** (single-touch futures, the
//! paper's Section 4 algorithm) and [`detect_general`] uses **MultiBags+**
//! (multi-touch / escaping futures, Section 5). For anything else — the
//! ground-truth oracle, the SP-Bags baseline, or the paper's partial
//! measurement configurations — build a [`Config`]:
//!
//! ```
//! use futurerd::{Algorithm, Analysis, Config};
//!
//! let detection = Config::new()
//!     .algorithm(Algorithm::MultiBagsPlus)
//!     .analysis(Analysis::Reachability) // maintain reachability, skip the access history
//!     .run(|cx| {
//!         cx.spawn(|_| {});
//!         cx.sync();
//!     });
//! assert!(detection.report.is_none()); // no access history ⇒ no race report
//! assert!(detection.reach_stats.unwrap().dsu_ops() > 0);
//! ```
//!
//! ## Sessions: detect while the execution grows
//!
//! Offline detection is a **[`Session`]**: open one (ephemeral via
//! [`Config::session`], or persistent on a [`Store`] entry via
//! [`Config::open_session`]), [`ingest`](Session::ingest) event chunks as
//! the observed execution grows, and ask for a [`report`](Session::report)
//! at any point. The session validates each event exactly once, keeps the
//! reachability freeze *resident* (appends extend it, never repeat it), and
//! serves every report from the cheapest valid path — fully cached, touched
//! partitions only, or cold — reporting which via [`Detection::path`]. The
//! answer is byte-identical to replaying the whole trace from scratch, for
//! any chunking, at any thread count:
//!
//! ```
//! use futurerd::{Config, DetectionPath};
//!
//! let recorded = futurerd::record(|cx| {
//!     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
//!     cx.spawn(|cx| cell.set(cx, 1));
//!     let racy = cell.get(cx);
//!     cx.sync();
//!     racy
//! });
//! let events = recorded.trace.events();
//!
//! let mut session = Config::structured().session();
//! session.ingest(&events[..4]).unwrap();
//! let early = session.report().unwrap(); // verdict on the prefix so far
//! assert_eq!(early.path, Some(DetectionPath::Cold));
//!
//! session.ingest(&events[4..]).unwrap(); // the execution grew
//! let full = session.report().unwrap();  // only the suffix is new work
//! assert!(matches!(full.path, Some(DetectionPath::Incremental { .. })));
//! assert_eq!(full.race_count(), 1);
//!
//! // Byte-identical to one-shot replay of the concatenated trace.
//! let one_shot = Config::structured().replay(&recorded.trace).unwrap();
//! assert_eq!(full.report().to_string(), one_shot.report().to_string());
//! ```
//!
//! ## Record once, detect many times
//!
//! [`record`] captures an execution as a persistent [`Trace`] without any
//! detection state; [`Config::replay`] — a single-shot session — feeds a
//! trace back through any detector. Traces serialize ([`Trace::save`] /
//! [`Trace::load`]), so detection can happen offline, repeatedly, across
//! algorithms — see the `futurerd-trace` CLI in `futurerd-bench` for the
//! command-line version of this workflow (including `follow`, the
//! append-and-redetect loop over a stored session):
//!
//! ```
//! let recorded = futurerd::record(|cx| {
//!     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
//!     cx.spawn(|cx| cell.set(cx, 1));
//!     let racy = cell.get(cx);
//!     cx.sync();
//!     racy
//! });
//! let bytes = recorded.trace.to_bytes(); // or recorded.trace.save(path)
//!
//! let trace = futurerd::Trace::from_bytes(&bytes).unwrap();
//! let structured = futurerd::Config::structured().replay(&trace).unwrap();
//! let general = futurerd::Config::general().replay(&trace).unwrap();
//! assert_eq!(structured.race_count(), 1);
//! assert_eq!(general.race_count(), 1);
//! ```
//!
//! Every fallible entry point returns the single [`Error`] type with typed
//! kinds ([`Error::Trace`], [`Error::Store`], [`Error::Unsupported`]) —
//! callers match on what went wrong, not on which layer noticed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod session;

pub use error::Error;
pub use futurerd_core::detector::{InstrumentationOnly, RaceDetector, ReachabilityOnly};
pub use futurerd_core::parallel;
pub use futurerd_core::parallel::{
    par_replay_detect, AssistExecutor, DetectExecutor, FreezeAssist, ReachIndex,
};
pub use futurerd_core::replay;
pub use futurerd_core::stats::{DetectorStats, ReachStats};
pub use futurerd_core::{AccessKind, Race, RaceReport};
pub use futurerd_dag::source::{ChunkedEvents, EventSource};
pub use futurerd_dag::trace::{PrefixValidator, Trace, TraceCounts, TraceError, TraceEvent};
pub use futurerd_dag::{FunctionId, MemAddr, NullObserver, Observer, StrandId};
pub use futurerd_runtime::exec::{ExecutionSummary, FutureHandle};
pub use futurerd_runtime::trace::TraceRecorder;
pub use futurerd_runtime::{ShadowArray, ShadowCell, ShadowMatrix, ThreadPool, ThreadPoolBuilder};
pub use futurerd_store as store;
pub use futurerd_store::{
    BatchJob, BatchManifest, DetectionPath, Store, StoreDetection, StoreError, StoreStats,
};
pub use session::Session;

use futurerd_core::reachability::{
    GraphOracle, MultiBags, MultiBagsPlus, SpBags, SpBagsConservative,
};
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_runtime::run_program;

/// The execution context handed to program bodies run through this facade.
///
/// It is the sequential depth-first eager executor's context
/// ([`futurerd_runtime::Cx`]) instantiated with the facade's dynamically
/// configured observer, so every construct — [`spawn`](Cx::spawn),
/// [`sync`](Cx::sync), [`create_future`](Cx::create_future),
/// [`get_future`](Cx::get_future), [`touch_future`](Cx::touch_future) — and
/// every instrumented memory wrapper works unchanged.
pub type Cx = futurerd_runtime::Cx<AnyObserver>;

/// Which reachability algorithm answers precedence queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// MultiBags (Section 4): structured — single-touch — futures, total
    /// time `O(T1·α(m,n))`.
    #[default]
    MultiBags,
    /// MultiBags+ (Section 5): general futures (multi-touch, escaping),
    /// total time `O((T1+k²)·α(m,n))`.
    MultiBagsPlus,
    /// The classical SP-Bags baseline: fork-join (`spawn`/`sync`) programs
    /// only. Programs that use futures may produce false positives.
    SpBags,
    /// SP-Bags with the conservative futures fallback: `create_fut` is
    /// treated as `spawn` and `get_fut` as `sync`, so it consumes any
    /// program — but on futures its verdict is approximate (reports from
    /// futures traces are [marked](RaceReport::is_approximate)). Quantifies
    /// the fork-join baseline's error, motivating the MultiBags algorithms.
    SpBagsConservative,
    /// The ground-truth graph oracle (explicit transitive closure): exact on
    /// every program, but quadratic space — for tests and ablations.
    GraphOracle,
}

/// How much of the detection pipeline runs — the four measurement
/// configurations of the paper's Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Analysis {
    /// Run the program with no detection state at all.
    Baseline,
    /// Maintain the reachability structure only.
    Reachability,
    /// Reachability plus memory-access instrumentation, but no access
    /// history.
    Instrumentation,
    /// Full race detection: reachability + access history + race queries.
    #[default]
    Full,
}

/// Builder selecting the observer (analysis level) × reachability structure
/// combination to run a program under, and — for trace replay — how many
/// detection threads to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    algorithm: Algorithm,
    analysis: Analysis,
    threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::default(),
            analysis: Analysis::default(),
            threads: 1,
        }
    }
}

impl Config {
    /// Full detection with MultiBags — the right default for structured
    /// (single-touch) futures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full detection with MultiBags (alias of [`Config::new`]).
    pub fn structured() -> Self {
        Self::new()
    }

    /// Full detection with MultiBags+ — required for general futures
    /// (multi-touch handles, handles escaping their creating task).
    pub fn general() -> Self {
        Self::new().algorithm(Algorithm::MultiBagsPlus)
    }

    /// Selects the reachability algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the analysis level.
    pub fn analysis(mut self, analysis: Analysis) -> Self {
        self.analysis = analysis;
        self
    }

    /// Number of detection threads used by sessions and the `replay*`
    /// wrappers (default 1).
    ///
    /// With more than one thread, full-detection MultiBags / MultiBags+
    /// requests run pass 2 of the parallel engine
    /// (`futurerd-core::parallel`) sharded across workers on a
    /// work-stealing [`ThreadPool`]: the granule space is split into
    /// contiguous ranges balanced by access count and the per-partition
    /// reports are merged deterministically — the [`RaceReport`] is
    /// identical to a single-threaded replay at any thread count. Other
    /// algorithms and partial analyses replay sequentially regardless of
    /// this setting.
    ///
    /// Workers come from the **process-shared** pool of this size
    /// ([`ThreadPool::shared`]), so repeated replays and batch jobs pay the
    /// worker spawn cost once; use [`Config::replay_on`] (or
    /// [`Session::on_pool`]) to supply a pool explicitly.
    ///
    /// Engine paths report the summed per-partition `detector_stats` but no
    /// `reach_stats` (the freeze does not meter its reachability work).
    ///
    /// # Example
    ///
    /// ```
    /// use futurerd::Config;
    ///
    /// let recorded = futurerd::record(|cx| {
    ///     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
    ///     cx.spawn(|cx| cell.set(cx, 1));
    ///     let racy = cell.get(cx);
    ///     cx.sync();
    ///     racy
    /// });
    /// let sequential = Config::structured().replay(&recorded.trace).unwrap();
    /// let parallel = Config::structured()
    ///     .threads(4)
    ///     .replay(&recorded.trace)
    ///     .unwrap();
    /// assert_eq!(parallel.race_count(), sequential.race_count());
    /// assert_eq!(
    ///     parallel.report().witnesses(),
    ///     sequential.report().witnesses()
    /// );
    /// ```
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn build_observer(self) -> AnyObserver {
        use AnyObserver as O;
        match (self.analysis, self.algorithm) {
            (Analysis::Baseline, _) => O::Baseline(NullObserver),
            (Analysis::Reachability, Algorithm::MultiBags) => {
                O::ReachMb(ReachabilityOnly::new(MultiBags::new()))
            }
            (Analysis::Reachability, Algorithm::MultiBagsPlus) => {
                O::ReachMbp(ReachabilityOnly::new(MultiBagsPlus::new()))
            }
            (Analysis::Reachability, Algorithm::SpBags) => {
                O::ReachSp(ReachabilityOnly::new(SpBags::new()))
            }
            (Analysis::Reachability, Algorithm::SpBagsConservative) => {
                O::ReachSpc(ReachabilityOnly::new(SpBagsConservative::new()))
            }
            (Analysis::Reachability, Algorithm::GraphOracle) => {
                O::ReachOracle(ReachabilityOnly::new(GraphOracle::new()))
            }
            (Analysis::Instrumentation, Algorithm::MultiBags) => {
                O::InstrMb(InstrumentationOnly::new(MultiBags::new()))
            }
            (Analysis::Instrumentation, Algorithm::MultiBagsPlus) => {
                O::InstrMbp(InstrumentationOnly::new(MultiBagsPlus::new()))
            }
            (Analysis::Instrumentation, Algorithm::SpBags) => {
                O::InstrSp(InstrumentationOnly::new(SpBags::new()))
            }
            (Analysis::Instrumentation, Algorithm::SpBagsConservative) => {
                O::InstrSpc(InstrumentationOnly::new(SpBagsConservative::new()))
            }
            (Analysis::Instrumentation, Algorithm::GraphOracle) => {
                O::InstrOracle(InstrumentationOnly::new(GraphOracle::new()))
            }
            (Analysis::Full, Algorithm::MultiBags) => {
                O::FullMb(RaceDetector::new(MultiBags::new()))
            }
            (Analysis::Full, Algorithm::MultiBagsPlus) => {
                O::FullMbp(RaceDetector::new(MultiBagsPlus::new()))
            }
            (Analysis::Full, Algorithm::SpBags) => O::FullSp(RaceDetector::new(SpBags::new())),
            (Analysis::Full, Algorithm::SpBagsConservative) => {
                O::FullSpc(RaceDetector::new(SpBagsConservative::new()))
            }
            (Analysis::Full, Algorithm::GraphOracle) => {
                O::FullOracle(RaceDetector::new(GraphOracle::new()))
            }
        }
    }

    /// Runs `body` on the sequential depth-first eager executor under the
    /// configured observer and returns what was observed.
    ///
    /// # Example
    ///
    /// ```
    /// use futurerd::{Algorithm, Analysis, Config};
    ///
    /// let detection = Config::new()
    ///     .algorithm(Algorithm::GraphOracle) // ground truth
    ///     .analysis(Analysis::Full)
    ///     .run(|cx| {
    ///         cx.spawn(|_| {});
    ///         cx.sync();
    ///     });
    /// assert!(detection.is_race_free());
    /// assert_eq!(detection.summary.spawns, 1);
    /// ```
    pub fn run<T>(self, body: impl FnOnce(&mut Cx) -> T) -> Detection<T> {
        let (value, observer, summary) = run_program(self.build_observer(), body);
        let Outcome {
            report,
            reach_stats,
            detector_stats,
        } = observer.into_outcome();
        Detection {
            value,
            summary,
            config: self,
            report,
            reach_stats,
            detector_stats,
            path: None,
        }
    }

    /// Replays a complete recorded [`Trace`] through this configuration —
    /// offline detection on a trace captured by [`record`] (or loaded from
    /// disk with [`Trace::load`]).
    ///
    /// This is the single-shot form of a [`Session`]: the trace is ingested
    /// into a fresh session (validating the canonical serial-DF ordering
    /// invariant, which the detectors' correctness depends on, and
    /// requiring a complete stream) and reported once. The returned
    /// [`Detection`] carries no program value, its summary's
    /// `bytes_allocated` is zero (traces do not record allocations), and
    /// its [`path`](Detection::path) records how the request was served.
    ///
    /// [`Algorithm::SpBags`] has no transition for future constructs, so
    /// replaying a futures-bearing trace under it returns
    /// [`Error::Unsupported`] instead of running.
    ///
    /// # Example
    ///
    /// ```
    /// use futurerd::Config;
    ///
    /// let recorded = futurerd::record(|cx| {
    ///     let mut cell = futurerd::ShadowCell::new(cx, 7u32);
    ///     let fut = cx.create_future(|cx| cell.get(cx));
    ///     cx.get_future(fut)
    /// });
    /// let detection = Config::general().replay(&recorded.trace).unwrap();
    /// assert!(detection.is_race_free());
    /// assert_eq!(detection.summary.gets, recorded.summary.gets);
    /// ```
    pub fn replay(self, trace: &Trace) -> Result<Detection<()>, Error> {
        let mut session = self.session();
        session.ingest(trace.events())?;
        require_complete(&session, trace.len())?;
        session.report()
    }

    /// As [`Config::replay`], but parallel detection workers run on the
    /// given pool instead of the facade's process-shared one — for callers
    /// that manage pool lifetime themselves. The partition count still comes
    /// from [`Config::threads`].
    ///
    /// # Example
    ///
    /// ```
    /// use futurerd::{Config, ThreadPool};
    ///
    /// let recorded = futurerd::record(|cx| {
    ///     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
    ///     cx.spawn(|cx| cell.set(cx, 1));
    ///     let racy = cell.get(cx);
    ///     cx.sync();
    ///     racy
    /// });
    /// let pool = ThreadPool::new(2);
    /// let d = Config::structured()
    ///     .threads(2)
    ///     .replay_on(&recorded.trace, &pool)
    ///     .unwrap();
    /// assert_eq!(d.race_count(), 1);
    /// ```
    pub fn replay_on(self, trace: &Trace, pool: &ThreadPool) -> Result<Detection<()>, Error> {
        let mut session = self.session().on_pool(pool);
        session.ingest(trace.events())?;
        require_complete(&session, trace.len())?;
        session.report()
    }

    /// Opens (or creates) a persistent detection [`Store`] rooted at `path`
    /// — traces live next to their frozen-index `FRDIDX` sidecars, so
    /// repeated replays take the warm path and appended events re-detect
    /// incrementally. See [`Config::replay_stored`] for running this
    /// configuration against a stored trace.
    pub fn store(path: impl AsRef<std::path::Path>) -> Result<Store, StoreError> {
        Store::open(path)
    }

    /// Replays a trace *stored* in `store` under this configuration — the
    /// single-shot form of a persistent [`Session`]
    /// ([`Config::open_session`]): the freeze is served from the trace's
    /// `FRDIDX` sidecar when it is valid (warm replay), only the appended
    /// suffix is refrozen when the trace has grown, and the refreshed state
    /// is persisted back. The report is byte-identical to
    /// [`Config::replay`] on the same trace, and
    /// [`Detection::path`] records which path served it.
    ///
    /// Only the freezable algorithms ([`Algorithm::MultiBags`] and
    /// [`Algorithm::MultiBagsPlus`]) have a persistent index; other
    /// algorithms return the store's
    /// [`Unfreezable`](StoreError::Unfreezable) error. A partial
    /// [`Analysis`] level is honored by replaying the stored trace
    /// sequentially (no index is read or written): the result has the same
    /// shape as [`Config::replay`] — no silent upgrade to full detection.
    ///
    /// # Example
    ///
    /// ```
    /// use futurerd::Config;
    ///
    /// let recorded = futurerd::record(|cx| {
    ///     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
    ///     cx.spawn(|cx| cell.set(cx, 1));
    ///     let racy = cell.get(cx);
    ///     cx.sync();
    ///     racy
    /// });
    /// let dir = std::env::temp_dir().join(format!("frd-facade-doc-{}", std::process::id()));
    /// let mut store = Config::store(&dir).unwrap();
    /// store.put_trace("racy", &recorded.trace).unwrap();
    ///
    /// let cold = Config::structured().replay_stored(&mut store, "racy").unwrap();
    /// let warm = Config::structured().replay_stored(&mut store, "racy").unwrap();
    /// assert_eq!(cold.race_count(), 1);
    /// assert_eq!(warm.report().witnesses(), cold.report().witnesses());
    /// assert_eq!(store.stats().warm_cached_hits, 1);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn replay_stored(self, store: &mut Store, name: &str) -> Result<Detection<()>, Error> {
        if self.analysis != Analysis::Full {
            // A stored index only exists for full detection; honor the
            // requested partial analysis by replaying the trace itself.
            let trace = store.load_trace(name)?;
            let mut session = self.session();
            session.ingest(trace.events())?;
            return session.report();
        }
        let mut session = self.open_session(store, name)?;
        session.report()
    }
}

/// Rejects a stream that stopped before `ProgramEnd` — the one-shot
/// `replay*` wrappers require complete traces (sessions accept prefixes).
fn require_complete(session: &Session<'_>, len: usize) -> Result<(), Error> {
    if session.is_complete() {
        Ok(())
    } else {
        Err(Error::Trace(TraceError::Invariant {
            index: len,
            message: "stream ended before ProgramEnd".to_string(),
        }))
    }
}

/// Maps validated trace totals onto the executor's summary shape (replayed
/// traces do not record allocations).
fn summary_from_counts(counts: &TraceCounts) -> ExecutionSummary {
    ExecutionSummary {
        functions: counts.functions,
        strands: counts.strands,
        spawns: counts.spawns,
        creates: counts.creates,
        syncs: counts.syncs,
        gets: counts.gets,
        reads: counts.reads,
        writes: counts.writes,
        bytes_allocated: 0,
    }
}

/// Runs the parallel engine's detection workers on a work-stealing
/// [`ThreadPool`]: the facade's [`DetectExecutor`], plugged in by
/// [`Config::threads`] so that sharded trace detection — not just capture —
/// is scheduled by `futurerd-runtime`'s pool.
#[derive(Clone, Copy)]
pub struct PoolExecutor<'p>(pub &'p ThreadPool);

impl std::fmt::Debug for PoolExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolExecutor")
            .field("threads", &self.0.num_threads())
            .finish()
    }
}

impl DetectExecutor for PoolExecutor<'_> {
    fn run_batch<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        self.0.run_batch(tasks);
    }
}

impl AssistExecutor for PoolExecutor<'_> {
    fn assist(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        self.0.run_assist(helpers, body);
    }
}

/// Runs `body` under full race detection with **MultiBags** — for programs
/// whose futures are *structured* (each future handle consumed by exactly
/// one `get_future`).
///
/// Shorthand for `Config::structured().run(body)`.
///
/// # Example
///
/// ```
/// let detection = futurerd::detect_structured(|cx| {
///     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
///     cx.spawn(|cx| cell.set(cx, 1));
///     let racy = cell.get(cx); // logically parallel with the child's write
///     cx.sync();
///     racy
/// });
/// assert_eq!(detection.race_count(), 1);
/// ```
pub fn detect_structured<T>(body: impl FnOnce(&mut Cx) -> T) -> Detection<T> {
    Config::structured().run(body)
}

/// Runs `body` under full race detection with **MultiBags+** — required for
/// *general* futures (multi-touch via [`Cx::touch_future`], or handles
/// consumed far from their creating task).
///
/// Shorthand for `Config::general().run(body)`.
///
/// # Example
///
/// ```
/// let detection = futurerd::detect_general(|cx| {
///     let mut shared = cx.create_future(|_| 21u64);
///     // Touching a future twice is a *general* (multi-touch) pattern.
///     cx.touch_future(&mut shared) + cx.touch_future(&mut shared)
/// });
/// assert!(detection.is_race_free());
/// assert_eq!(detection.value, 42);
/// assert_eq!(detection.summary.gets, 2);
/// ```
pub fn detect_general<T>(body: impl FnOnce(&mut Cx) -> T) -> Detection<T> {
    Config::general().run(body)
}

/// The output of [`record`]: the program's value, its execution counters,
/// and the captured [`Trace`].
#[derive(Debug)]
pub struct Recorded<T> {
    /// The value returned by the program body.
    pub value: T,
    /// Execution counters (strands, futures, memory accesses, ...).
    pub summary: ExecutionSummary,
    /// The recorded event stream, in canonical serial-DF order.
    pub trace: Trace,
}

/// Runs `body` once while recording its execution event stream, without any
/// detection state. The returned [`Trace`] can be replayed through every
/// detector with [`Config::replay`] (or saved with [`Trace::save`] and
/// detected on later, offline) — record once, detect many times.
///
/// # Example
///
/// ```
/// use futurerd::{Algorithm, Config};
///
/// // Record the (racy) execution once...
/// let recorded = futurerd::record(|cx| {
///     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
///     cx.spawn(|cx| cell.set(cx, 1));
///     let racy = cell.get(cx);
///     cx.sync();
///     racy
/// });
/// assert_eq!(recorded.summary.spawns, 1);
///
/// // ...then detect on the trace as many times as needed, with any
/// // algorithm, without re-running the program.
/// for algorithm in [Algorithm::MultiBags, Algorithm::MultiBagsPlus, Algorithm::GraphOracle] {
///     let detection = Config::new()
///         .algorithm(algorithm)
///         .replay(&recorded.trace)
///         .expect("recorded traces replay cleanly");
///     assert_eq!(detection.race_count(), 1);
/// }
/// ```
pub fn record<T>(body: impl FnOnce(&mut Cx) -> T) -> Recorded<T> {
    let (value, observer, summary) = run_program(AnyObserver::Recorder(TraceRecorder::new()), body);
    let AnyObserver::Recorder(recorder) = observer else {
        unreachable!("the observer variant does not change during a run")
    };
    Recorded {
        value,
        summary,
        trace: recorder.into_trace(),
    }
}

/// Everything a facade run produced: the program's value, execution
/// counters, and whatever detection state the configuration maintained.
#[derive(Debug)]
pub struct Detection<T> {
    /// The value returned by the program body.
    pub value: T,
    /// Execution counters (strands, futures, memory accesses, ...).
    pub summary: ExecutionSummary,
    /// The configuration that produced this detection.
    pub config: Config,
    /// The race report — present only under [`Analysis::Full`].
    pub report: Option<RaceReport>,
    /// Reachability work counters — absent under [`Analysis::Baseline`]
    /// and on the frozen-engine replay paths (the freeze does not meter its
    /// reachability work).
    pub reach_stats: Option<ReachStats>,
    /// Access-history counters — present only under [`Analysis::Full`].
    /// On engine paths these are the per-partition counters summed (equal
    /// to a sequential replay's on every field except `shadow_pages`,
    /// which counts per-partition tables).
    pub detector_stats: Option<DetectorStats>,
    /// How a replay/session/store request was served (`None` for live
    /// [`Config::run`] executions, which have nothing to route).
    pub path: Option<DetectionPath>,
}

impl<T> Detection<T> {
    /// True if no race was found (vacuously true for configurations that do
    /// not maintain an access history).
    pub fn is_race_free(&self) -> bool {
        self.report.as_ref().is_none_or(RaceReport::is_race_free)
    }

    /// Number of distinct racy granules found (0 when no access history was
    /// maintained).
    pub fn race_count(&self) -> usize {
        self.report.as_ref().map_or(0, RaceReport::race_count)
    }

    /// The race report; panics if the configuration did not maintain one
    /// (any [`Analysis`] other than [`Analysis::Full`]).
    pub fn report(&self) -> &RaceReport {
        self.report
            .as_ref()
            .expect("this configuration did not maintain an access history")
    }
}

/// The facade's dynamically selected observer: one variant per
/// analysis × algorithm combination (plus the baseline), so a runtime
/// [`Config`] choice maps onto the statically monomorphized detectors of
/// `futurerd-core`.
#[derive(Debug)]
#[allow(missing_docs)] // variant names mirror Config (analysis × algorithm)
pub enum AnyObserver {
    Baseline(NullObserver),
    /// Trace capture instead of detection; used by [`record`].
    Recorder(TraceRecorder),
    ReachMb(ReachabilityOnly<MultiBags>),
    ReachMbp(ReachabilityOnly<MultiBagsPlus>),
    ReachSp(ReachabilityOnly<SpBags>),
    ReachSpc(ReachabilityOnly<SpBagsConservative>),
    ReachOracle(ReachabilityOnly<GraphOracle>),
    InstrMb(InstrumentationOnly<MultiBags>),
    InstrMbp(InstrumentationOnly<MultiBagsPlus>),
    InstrSp(InstrumentationOnly<SpBags>),
    InstrSpc(InstrumentationOnly<SpBagsConservative>),
    InstrOracle(InstrumentationOnly<GraphOracle>),
    FullMb(RaceDetector<MultiBags>),
    FullMbp(RaceDetector<MultiBagsPlus>),
    FullSp(RaceDetector<SpBags>),
    FullSpc(RaceDetector<SpBagsConservative>),
    FullOracle(RaceDetector<GraphOracle>),
}

struct Outcome {
    report: Option<RaceReport>,
    reach_stats: Option<ReachStats>,
    detector_stats: Option<DetectorStats>,
}

impl AnyObserver {
    fn into_outcome(self) -> Outcome {
        let none = Outcome {
            report: None,
            reach_stats: None,
            detector_stats: None,
        };
        macro_rules! reach_only {
            ($obs:expr) => {
                Outcome {
                    reach_stats: Some($obs.stats()),
                    ..none
                }
            };
        }
        macro_rules! full {
            ($det:expr) => {{
                let (report, reach_stats, detector_stats) = $det.into_parts();
                Outcome {
                    report: Some(report),
                    reach_stats: Some(reach_stats),
                    detector_stats: Some(detector_stats),
                }
            }};
        }
        match self {
            AnyObserver::Baseline(_) => none,
            AnyObserver::Recorder(_) => none,
            AnyObserver::ReachMb(o) => reach_only!(o),
            AnyObserver::ReachMbp(o) => reach_only!(o),
            AnyObserver::ReachSp(o) => reach_only!(o),
            AnyObserver::ReachSpc(o) => reach_only!(o),
            AnyObserver::ReachOracle(o) => reach_only!(o),
            AnyObserver::InstrMb(o) => reach_only!(o),
            AnyObserver::InstrMbp(o) => reach_only!(o),
            AnyObserver::InstrSp(o) => reach_only!(o),
            AnyObserver::InstrSpc(o) => reach_only!(o),
            AnyObserver::InstrOracle(o) => reach_only!(o),
            AnyObserver::FullMb(d) => full!(d),
            AnyObserver::FullMbp(d) => full!(d),
            AnyObserver::FullSp(d) => full!(d),
            AnyObserver::FullSpc(d) => full!(d),
            AnyObserver::FullOracle(d) => full!(d),
        }
    }
}

macro_rules! each_observer {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnyObserver::Baseline($inner) => $body,
            AnyObserver::Recorder($inner) => $body,
            AnyObserver::ReachMb($inner) => $body,
            AnyObserver::ReachMbp($inner) => $body,
            AnyObserver::ReachSp($inner) => $body,
            AnyObserver::ReachSpc($inner) => $body,
            AnyObserver::ReachOracle($inner) => $body,
            AnyObserver::InstrMb($inner) => $body,
            AnyObserver::InstrMbp($inner) => $body,
            AnyObserver::InstrSp($inner) => $body,
            AnyObserver::InstrSpc($inner) => $body,
            AnyObserver::InstrOracle($inner) => $body,
            AnyObserver::FullMb($inner) => $body,
            AnyObserver::FullMbp($inner) => $body,
            AnyObserver::FullSp($inner) => $body,
            AnyObserver::FullSpc($inner) => $body,
            AnyObserver::FullOracle($inner) => $body,
        }
    };
}

impl Observer for AnyObserver {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        each_observer!(self, o => o.on_program_start(root, first))
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        each_observer!(self, o => o.on_strand_start(strand, function))
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        each_observer!(self, o => o.on_spawn(ev))
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        each_observer!(self, o => o.on_create_future(ev))
    }
    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        each_observer!(self, o => o.on_return(function, last))
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        each_observer!(self, o => o.on_sync(ev))
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        each_observer!(self, o => o.on_get_future(ev))
    }
    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        each_observer!(self, o => o.on_read(strand, addr, size))
    }
    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        each_observer!(self, o => o.on_write(strand, addr, size))
    }
    fn on_program_end(&mut self, last: StrandId) {
        each_observer!(self, o => o.on_program_end(last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racy_body(cx: &mut Cx) -> u32 {
        let mut cell = ShadowCell::new(cx, 0u32);
        cx.spawn(|cx| cell.set(cx, 1));
        let v = cell.get(cx); // races with the child's write
        cx.sync();
        v
    }

    #[test]
    fn structured_and_general_agree_on_a_simple_race() {
        let a = detect_structured(racy_body);
        let b = detect_general(racy_body);
        assert_eq!(a.race_count(), 1);
        assert_eq!(b.race_count(), 1);
        assert!(!a.is_race_free());
        assert_eq!(a.report().race_count(), 1);
    }

    #[test]
    fn every_full_algorithm_finds_the_seeded_race() {
        for algorithm in [
            Algorithm::MultiBags,
            Algorithm::MultiBagsPlus,
            Algorithm::SpBags, // pure fork-join body, so SP-Bags is exact here
            Algorithm::GraphOracle,
        ] {
            let d = Config::new().algorithm(algorithm).run(racy_body);
            assert_eq!(d.race_count(), 1, "{algorithm:?}");
            assert!(d.detector_stats.unwrap().read_checks > 0);
        }
    }

    #[test]
    fn baseline_maintains_no_state() {
        let d = Config::new().analysis(Analysis::Baseline).run(racy_body);
        assert!(d.report.is_none());
        assert!(d.reach_stats.is_none());
        assert!(d.detector_stats.is_none());
        assert!(d.is_race_free()); // vacuously
        assert_eq!(d.race_count(), 0);
        assert_eq!(d.summary.spawns, 1);
    }

    #[test]
    fn partial_analyses_expose_reachability_stats_only() {
        for analysis in [Analysis::Reachability, Analysis::Instrumentation] {
            let d = Config::general().analysis(analysis).run(racy_body);
            assert!(d.report.is_none());
            assert!(d.detector_stats.is_none());
            assert!(d.reach_stats.unwrap().dsu_ops() > 0, "{analysis:?}");
        }
    }

    #[test]
    #[should_panic(expected = "did not maintain an access history")]
    fn report_accessor_panics_without_access_history() {
        let d = Config::new().analysis(Analysis::Baseline).run(|_| ());
        let _ = d.report();
    }

    #[test]
    fn recorded_trace_replays_identically_to_direct_detection() {
        let direct = detect_structured(racy_body);
        let recorded = record(racy_body);
        assert_eq!(recorded.value, direct.value);
        assert_eq!(recorded.summary, direct.summary);
        let trace = Trace::from_bytes(&recorded.trace.to_bytes()).expect("codec round trip");
        for algorithm in [
            Algorithm::MultiBags,
            Algorithm::MultiBagsPlus,
            Algorithm::SpBags,
            Algorithm::GraphOracle,
        ] {
            let replayed = Config::new()
                .algorithm(algorithm)
                .replay(&trace)
                .expect("recorded traces are canonical");
            assert_eq!(replayed.race_count(), direct.race_count(), "{algorithm:?}");
            assert_eq!(
                replayed.report().witnesses(),
                direct.report().witnesses(),
                "{algorithm:?}"
            );
        }
    }

    #[test]
    fn replay_supports_partial_analyses() {
        let recorded = record(racy_body);
        let d = Config::general()
            .analysis(Analysis::Reachability)
            .replay(&recorded.trace)
            .unwrap();
        assert!(d.report.is_none());
        assert!(d.reach_stats.unwrap().dsu_ops() > 0);
    }

    #[test]
    fn replay_rejects_corrupt_traces() {
        let mut recorded = record(racy_body);
        recorded
            .trace
            .push(TraceEvent::ProgramEnd { last: StrandId(0) });
        assert!(Config::new().replay(&recorded.trace).is_err());
    }

    #[test]
    fn replay_refuses_spbags_on_futures_traces() {
        let recorded = record(|cx| {
            let fut = cx.create_future(|_| 1u32);
            cx.get_future(fut)
        });
        let err = Config::new()
            .algorithm(Algorithm::SpBags)
            .replay(&recorded.trace)
            .unwrap_err();
        assert!(err.is_unsupported(), "{err}");
        // The same trace replays fine on a fork-join-capable algorithm.
        assert!(Config::general().replay(&recorded.trace).is_ok());
    }

    #[test]
    fn threaded_replay_matches_sequential_replay() {
        let recorded = record(racy_body);
        for algorithm in [Algorithm::MultiBags, Algorithm::MultiBagsPlus] {
            let sequential = Config::new()
                .algorithm(algorithm)
                .replay(&recorded.trace)
                .unwrap();
            for threads in [2, 4] {
                let parallel = Config::new()
                    .algorithm(algorithm)
                    .threads(threads)
                    .replay(&recorded.trace)
                    .unwrap();
                assert_eq!(
                    parallel.report().witnesses(),
                    sequential.report().witnesses(),
                    "{algorithm:?} P={threads}"
                );
                assert_eq!(parallel.race_count(), sequential.race_count());
                assert_eq!(parallel.summary, sequential.summary);
            }
        }
    }

    #[test]
    fn threaded_replay_ignores_threads_for_partial_analyses() {
        let recorded = record(racy_body);
        let d = Config::general()
            .threads(4)
            .analysis(Analysis::Reachability)
            .replay(&recorded.trace)
            .unwrap();
        assert!(d.report.is_none());
        assert!(d.reach_stats.unwrap().dsu_ops() > 0);
    }

    #[test]
    fn conservative_spbags_runs_on_futures_and_is_marked_approximate() {
        let recorded = record(|cx| {
            let mut cell = ShadowCell::new(cx, 0u32);
            let fut = cx.create_future(|cx| cell.set(cx, 1));
            let racy = cell.get(cx); // races with the future's write
            cx.get_future(fut);
            racy
        });
        // Classic SP-Bags refuses the trace; the conservative fallback runs.
        assert!(Config::new()
            .algorithm(Algorithm::SpBags)
            .replay(&recorded.trace)
            .is_err());
        let d = Config::new()
            .algorithm(Algorithm::SpBagsConservative)
            .replay(&recorded.trace)
            .unwrap();
        assert!(d.report().is_approximate());
        // On a pure fork-join body the fallback is exact and unmarked.
        let d = Config::new()
            .algorithm(Algorithm::SpBagsConservative)
            .replay(&record(racy_body).trace)
            .unwrap();
        assert!(!d.report().is_approximate());
        assert_eq!(d.race_count(), 1);
    }

    #[test]
    fn general_futures_multi_touch_is_race_free_after_joins() {
        let d = detect_general(|cx| {
            let mut shared = cx.create_future(|cx| {
                let cell = ShadowCell::new(cx, 21u64);
                cell.get(cx)
            });
            let a = cx.touch_future(&mut shared);
            let b = cx.touch_future(&mut shared);
            a + b
        });
        assert!(d.is_race_free());
        assert_eq!(d.value, 42);
        assert_eq!(d.summary.gets, 2);
    }
}
