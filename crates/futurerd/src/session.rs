//! Long-lived detection sessions: one streaming API over run, replay and
//! store. The module is private — [`Session`] (re-exported at the crate
//! root) carries the full routing-model documentation.

use crate::error::Error;
use crate::{summary_from_counts, Algorithm, Analysis, Config, Detection, PoolExecutor};
use futurerd_core::parallel::{
    detect_frozen_outcomes, incremental_outcomes, merge_outcomes_stats, AssistExecutor,
    DetectExecutor, FreezeAssist, IncrementalFreezer, IncrementalOutcomes, PartitionOutcome,
    StdExecutor,
};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::source::EventSource;
use futurerd_dag::trace::{PrefixValidator, Trace, TraceEvent};
use futurerd_runtime::ThreadPool;
use futurerd_store::{DetectionPath, Store};

/// The engine half of a session: the resident freezer plus the cached
/// pass-2 results it amortizes across reports.
#[derive(Debug)]
struct EngineState {
    freezer: IncrementalFreezer,
    /// Cached per-partition outcomes of the last report (or the sidecar's),
    /// covering the first `detected_accesses` granule accesses.
    outcomes: Option<Vec<PartitionOutcome>>,
    /// Granule accesses covered by `outcomes`.
    detected_accesses: usize,
    /// Stream position covered by `outcomes` (for append accounting).
    detected_pos: usize,
    /// True if the freezer was resumed from a persisted sidecar rather than
    /// built by this session.
    resumed: bool,
}

/// A long-lived, incrementally-fed detection session — one streaming API
/// over run, replay and store.
///
/// Open one from a [`Config`] ([`Config::session`], ephemeral) or from a
/// [`Store`] entry ([`Config::open_session`], persistent),
/// [`ingest`](Session::ingest) event chunks as the observed execution
/// grows, and ask for a [`report`](Session::report) at any point. Each
/// report is served from the cheapest valid path and says which one it
/// took ([`Session::last_path`], [`Detection::path`]):
///
/// * **warm-cached** — nothing relevant changed since the last report: the
///   cached per-partition outcomes merge straight into the report;
/// * **incremental** — the session's resident freezer has already absorbed
///   the ingested suffix (freezing is *live*, spread over the appends,
///   never repeated), so only detection partitions whose granule ranges
///   the suffix touched re-run — with automatic re-partitioning once the
///   access histogram drifts past
///   [`REBALANCE_DRIFT_FACTOR`](futurerd_core::parallel::REBALANCE_DRIFT_FACTOR);
/// * **warm-index / cold** — first report of a stored (resp. fresh)
///   stream.
///
/// The report is **byte-identical** to one-shot [`Config::replay`] of the
/// concatenated trace, for any chunking, at any thread count — the
/// property tests assert this over random chunkings down to single events.
///
/// Algorithms without a frozen reachability form (the SP-Bags variants and
/// the graph oracle) and partial analysis levels fall back to sequential
/// replay of the accumulated trace on every report: always correct, never
/// incremental — the reported path stays [`DetectionPath::Cold`].
pub struct Session<'s> {
    config: Config,
    validator: PrefixValidator,
    trace: Trace,
    engine: Option<EngineState>,
    /// Store binding of a persistent session (plus its entry name).
    store: Option<(&'s mut Store, String)>,
    /// Optional caller-managed worker pool for parallel detection.
    pool: Option<&'s ThreadPool>,
    /// Events ingested since the session state was last persisted.
    dirty: bool,
    last_path: Option<DetectionPath>,
    /// Wall time spent inside [`Session::ingest`] while observability
    /// recording was enabled — feeds the `session.ingest.events_per_sec`
    /// gauge. Stays zero (and costs nothing) when recording is off.
    ingest_ns: u64,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("events", &self.validator.position())
            .field("complete", &self.validator.is_complete())
            .field("stored", &self.store.as_ref().map(|(_, name)| name))
            .field("last_path", &self.last_path)
            .finish_non_exhaustive()
    }
}

impl Config {
    /// Opens an **ephemeral** detection session for this configuration: all
    /// state lives in memory and dies with the session.
    ///
    /// Full-detection MultiBags / MultiBags+ sessions keep a resident
    /// incremental freezer, so repeated [`Session::report`] calls across
    /// [`Session::ingest`]s never re-freeze already-seen events. Other
    /// algorithms and partial analyses replay sequentially per report.
    ///
    /// # Example
    ///
    /// ```
    /// use futurerd::Config;
    ///
    /// let recorded = futurerd::record(|cx| {
    ///     let mut cell = futurerd::ShadowCell::new(cx, 0u32);
    ///     cx.spawn(|cx| cell.set(cx, 1));
    ///     let racy = cell.get(cx);
    ///     cx.sync();
    ///     racy
    /// });
    /// let mut session = Config::structured().session();
    /// for event in recorded.trace.events() {
    ///     session.ingest(std::slice::from_ref(event)).unwrap();
    /// }
    /// let detection = session.report().unwrap();
    /// assert_eq!(detection.race_count(), 1);
    /// ```
    pub fn session(self) -> Session<'static> {
        let engine = (self.analysis == Analysis::Full)
            .then(|| IncrementalFreezer::new(replay_algorithm(self.algorithm)))
            .flatten()
            .map(|freezer| EngineState {
                freezer,
                outcomes: None,
                detected_accesses: 0,
                detected_pos: 0,
                resumed: false,
            });
        Session {
            config: self,
            validator: PrefixValidator::new(),
            trace: Trace::new(),
            engine,
            store: None,
            pool: None,
            dirty: false,
            last_path: None,
            ingest_ns: 0,
        }
    }

    /// Opens a **persistent** detection session on a [`Store`] entry.
    ///
    /// The session resumes from the entry's `FRDIDX` sidecar when one is
    /// valid (so a re-opened session starts warm, not cold), keeps the
    /// freezer resident across [`Session::ingest`]s, and persists refreshed
    /// state — the grown trace, the freezer, the cached outcomes — back to
    /// the store on every [`Session::report`] that changed it. The store's
    /// [`stats`](Store::stats) account the session's requests exactly like
    /// [`Store::detect`] traffic.
    ///
    /// Persistent sessions are full-detection only and need a freezable
    /// algorithm: partial analyses return [`Error::Unsupported`] and the
    /// SP-Bags variants / graph oracle return the store's
    /// [`Unfreezable`](futurerd_store::StoreError::Unfreezable) error.
    pub fn open_session<'s>(self, store: &'s mut Store, name: &str) -> Result<Session<'s>, Error> {
        if self.analysis != Analysis::Full {
            return Err(Error::unsupported(
                "persistent sessions always run full detection; \
                 use Config::replay (or an ephemeral session) for partial analyses",
            ));
        }
        let algorithm = replay_algorithm(self.algorithm);
        let state = store.open_session_state(name, algorithm)?;
        let resumed = state.freezer.is_some();
        let mut freezer = match state.freezer {
            Some(freezer) => freezer,
            None => IncrementalFreezer::new(algorithm).expect("open_session_state checked"),
        };
        let frozen_pos = freezer.position() as usize;
        let (outcomes, detected_accesses) = match state.outcomes {
            Some(outcomes) => (Some(outcomes), freezer.accesses().len()),
            None => (None, 0),
        };
        let mut validator = PrefixValidator::new();
        validator.extend(state.trace.events())?;
        extend_freezer_pooled(
            &mut freezer,
            &state.trace.events()[frozen_pos..],
            self.threads,
            None,
        );
        Ok(Session {
            config: self,
            validator,
            trace: state.trace,
            engine: Some(EngineState {
                freezer,
                outcomes,
                detected_accesses,
                // With no cached outcomes the resumed *index* still covers
                // the frozen prefix — append accounting starts there.
                detected_pos: frozen_pos,
                resumed,
            }),
            store: Some((store, name.to_string())),
            pool: None,
            dirty: false,
            last_path: None,
            ingest_ns: 0,
        })
    }
}

impl<'s> Session<'s> {
    /// Runs this session's parallel detection workers on `pool` instead of
    /// the process-shared pool of [`Config::threads`]'s size.
    pub fn on_pool(mut self, pool: &'s ThreadPool) -> Session<'s> {
        self.pool = Some(pool);
        self
    }

    /// The configuration this session detects under.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Number of events ingested so far.
    pub fn len(&self) -> usize {
        self.validator.position()
    }

    /// True if no events have been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the stream has reached its `ProgramEnd` — further ingests
    /// will be rejected by validation.
    pub fn is_complete(&self) -> bool {
        self.validator.is_complete()
    }

    /// The accumulated event stream.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// How the most recent [`Session::report`] was served, if one ran.
    pub fn last_path(&self) -> Option<DetectionPath> {
        self.last_path
    }

    /// Ingests the next chunk of the execution's event stream.
    ///
    /// The chunk is validated as the continuation of the canonical
    /// serial-DF prefix seen so far (the validator is session state — each
    /// event is validated exactly once, however many chunks the stream
    /// arrives in) and fed straight into the resident freezer. Ingest does
    /// **no detection work** beyond the freeze; call
    /// [`report`](Session::report) when a verdict is wanted.
    ///
    /// On a validation error the chunk's valid prefix is retained, the
    /// offending event and everything after it are dropped, and the session
    /// refuses further ingests (the stream is corrupt at a known
    /// position); reports on the retained prefix remain available.
    pub fn ingest(&mut self, events: &[TraceEvent]) -> Result<(), Error> {
        if events.is_empty() {
            return Ok(());
        }
        let started = futurerd_obs::enabled().then(std::time::Instant::now);
        let before = self.validator.position();
        let result = {
            let _span = futurerd_obs::Span::enter(futurerd_obs::names::VALIDATE);
            self.validator.extend(events)
        };
        let accepted = &events[..self.validator.position() - before];
        if !accepted.is_empty() {
            self.trace.extend_events(accepted);
            let (threads, pool) = (self.config.threads, self.pool);
            if let Some(engine) = &mut self.engine {
                extend_freezer_pooled(&mut engine.freezer, accepted, threads, pool);
            }
            self.dirty = true;
        }
        if let Some(started) = started {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.ingest_ns = self.ingest_ns.saturating_add(ns);
            futurerd_obs::counter_add(
                futurerd_obs::names::SESSION_INGEST_EVENTS,
                accepted.len() as u64,
            );
            if self.ingest_ns > 0 {
                let rate = (self.validator.position() as u128).saturating_mul(1_000_000_000)
                    / u128::from(self.ingest_ns);
                futurerd_obs::gauge_set(
                    futurerd_obs::names::SESSION_INGEST_EVENTS_PER_SEC,
                    u64::try_from(rate).unwrap_or(u64::MAX),
                );
            }
        }
        result?;
        Ok(())
    }

    /// Drains an [`EventSource`] into the session: a whole [`Trace`], a
    /// chunk queue, or a live
    /// [`TraceRecorder`](futurerd_runtime::trace::TraceRecorder). Returns
    /// the number of events ingested.
    pub fn ingest_from(&mut self, source: &mut impl EventSource) -> Result<usize, Error> {
        let mut total = 0;
        loop {
            let chunk = source.take_events();
            if chunk.is_empty() {
                return Ok(total);
            }
            total += chunk.len();
            self.ingest(&chunk)?;
        }
    }

    /// Detects races on everything ingested so far and returns the
    /// [`Detection`], with [`Detection::path`] saying how the request was
    /// served. The report is byte-identical to one-shot
    /// [`Config::replay`] of the accumulated trace.
    ///
    /// Incomplete streams are fine: a report on a prefix reflects the
    /// execution so far and a later report continues incrementally from it.
    pub fn report(&mut self) -> Result<Detection<()>, Error> {
        let counts = self.validator.counts();
        let summary = summary_from_counts(&counts);
        let detection = match self.engine.take() {
            Some(engine) => {
                // The engine (resident freezer + caches) goes back into the
                // session whether or not the report succeeded: a transient
                // failure (e.g. persisting to a full disk) must not degrade
                // every later report to a cold sequential replay.
                let (engine, result) = self.engine_report(engine, summary);
                self.engine = Some(engine);
                result?
            }
            None => self.sequential_report(summary)?,
        };
        self.last_path = detection.path;
        Ok(detection)
    }

    /// The engine path: resident freezer + sharded pass 2 with cached
    /// outcomes, routed warm-cached → incremental → warm-index/cold.
    /// Always hands the engine back, even on error.
    fn engine_report(
        &mut self,
        mut engine: EngineState,
        summary: futurerd_runtime::exec::ExecutionSummary,
    ) -> (EngineState, Result<Detection<()>, Error>) {
        let started = futurerd_obs::recording().then(std::time::Instant::now);
        let threads = self.config.threads;
        let shared_pool = (self.pool.is_none() && threads > 1).then(|| ThreadPool::shared(threads));
        let executor = match (self.pool, &shared_pool) {
            (Some(pool), _) => AnyExec::Pool(PoolExecutor(pool)),
            (None, Some(pool)) => AnyExec::Pool(PoolExecutor(pool)),
            (None, None) => AnyExec::Std(StdExecutor),
        };

        let accesses_len = engine.freezer.accesses().len();
        let appended_events = self.validator.position() - engine.detected_pos;
        let (outcomes, path) = match engine.outcomes.take() {
            Some(stored) if engine.detected_accesses == accesses_len => {
                // Nothing detection-relevant changed since the cached
                // outcomes were computed.
                (stored, DetectionPath::WarmCached)
            }
            Some(stored) if !stored.is_empty() => {
                let index = engine.freezer.snapshot_index();
                let accesses = engine.freezer.accesses();
                let fresh = &accesses[engine.detected_accesses..];
                let IncrementalOutcomes {
                    outcomes,
                    rerun,
                    reused,
                    rebalanced,
                } = incremental_outcomes(&index, accesses, fresh, stored, threads, &executor);
                (
                    outcomes,
                    DetectionPath::Incremental {
                        appended_events,
                        rerun,
                        reused,
                        rebalanced,
                    },
                )
            }
            _ => {
                // First detection (or an empty cached set): run pass 2 in
                // full over the resident freeze.
                let index = engine.freezer.snapshot_index();
                let outcomes =
                    detect_frozen_outcomes(&index, engine.freezer.accesses(), threads, &executor);
                let path = if engine.resumed && appended_events == 0 {
                    DetectionPath::WarmIndex
                } else if engine.resumed {
                    DetectionPath::Incremental {
                        appended_events,
                        rerun: outcomes.len(),
                        reused: 0,
                        rebalanced: false,
                    }
                } else {
                    DetectionPath::Cold
                };
                (outcomes, path)
            }
        };

        let (report, detector_stats) = merge_outcomes_stats(outcomes.iter().cloned());
        if let Some(started) = started {
            // The report's compute time, attributed to the path the routing
            // chose — span names must be `'static`, so map the kind onto
            // the fixed `session.report.*` stage set. `record_stage` feeds
            // both the aggregate stats and the interval journal.
            let stage = match path {
                DetectionPath::Cold => futurerd_obs::names::SESSION_REPORT_COLD,
                DetectionPath::WarmIndex => futurerd_obs::names::SESSION_REPORT_WARM_INDEX,
                DetectionPath::WarmCached => futurerd_obs::names::SESSION_REPORT_WARM_CACHED,
                DetectionPath::Incremental { .. } => {
                    futurerd_obs::names::SESSION_REPORT_INCREMENTAL
                }
            };
            futurerd_obs::record_stage(stage, started);
            futurerd_obs::counter_add(&format!("session.path.{}", path.kind_key()), 1);
            detector_stats.export_metrics("detector");
            if let AnyExec::Pool(PoolExecutor(pool)) = &executor {
                pool.export_worker_metrics("pool");
            }
        }
        let mut persist_error = None;
        if let Some((store, name)) = &mut self.store {
            store.record_path(path);
            if self.dirty || path != DetectionPath::WarmCached {
                persist_error = store
                    .persist_session(name, &self.trace, &engine.freezer, outcomes.clone())
                    .err();
            }
            store.stats().export_metrics("store");
        }
        // Cache the computed outcomes regardless: the in-memory state is
        // valid even when writing it to disk failed, so the session keeps
        // reporting incrementally (and keeps `dirty`, so the next
        // successful report persists everything).
        engine.outcomes = Some(outcomes);
        engine.detected_accesses = accesses_len;
        engine.detected_pos = self.validator.position();
        engine.resumed = true;
        if let Some(error) = persist_error {
            return (engine, Err(error.into()));
        }
        self.dirty = false;

        let detection = Detection {
            value: (),
            summary,
            config: self.config,
            report: Some(report),
            reach_stats: None,
            detector_stats: Some(detector_stats),
            path: Some(path),
        };
        (engine, Ok(detection))
    }

    /// The fallback path: replay the accumulated trace through the
    /// configured observer from scratch — always correct, never
    /// incremental.
    fn sequential_report(
        &mut self,
        summary: futurerd_runtime::exec::ExecutionSummary,
    ) -> Result<Detection<()>, Error> {
        if self.config.algorithm == Algorithm::SpBags && self.trace.has_futures() {
            return Err(Error::unsupported(
                "SP-Bags cannot consume traces that contain futures",
            ));
        }
        let started = futurerd_obs::recording().then(std::time::Instant::now);
        let mut observer = self.config.build_observer();
        futurerd_dag::trace::replay_events(self.trace.events(), &mut observer);
        let crate::Outcome {
            mut report,
            reach_stats,
            detector_stats,
        } = observer.into_outcome();
        if let Some(started) = started {
            futurerd_obs::record_stage(futurerd_obs::names::SESSION_REPORT_COLD, started);
            futurerd_obs::counter_add("session.path.cold", 1);
            if let Some(stats) = &reach_stats {
                stats.export_metrics("reach");
            }
            if let Some(stats) = &detector_stats {
                stats.export_metrics("detector");
            }
        }
        if self.config.algorithm == Algorithm::SpBagsConservative && self.trace.has_futures() {
            // The conservative fallback folded futures into fork-join
            // constructs: the verdict is approximate by construction.
            if let Some(report) = report.as_mut() {
                report.mark_approximate();
            }
        }
        Ok(Detection {
            value: (),
            summary,
            config: self.config,
            report,
            reach_stats,
            detector_stats,
            path: Some(DetectionPath::Cold),
        })
    }
}

/// Maps the facade's algorithm enum onto the replay layer's.
pub(crate) fn replay_algorithm(algorithm: Algorithm) -> ReplayAlgorithm {
    match algorithm {
        Algorithm::MultiBags => ReplayAlgorithm::MultiBags,
        Algorithm::MultiBagsPlus => ReplayAlgorithm::MultiBagsPlus,
        Algorithm::SpBags => ReplayAlgorithm::SpBags,
        Algorithm::SpBagsConservative => ReplayAlgorithm::SpBagsConservative,
        Algorithm::GraphOracle => ReplayAlgorithm::GraphOracle,
    }
}

/// The session's runtime executor choice: the caller's (or shared) pool
/// when detection is parallel, scoped threads otherwise.
enum AnyExec<'p> {
    Pool(PoolExecutor<'p>),
    Std(StdExecutor),
}

impl DetectExecutor for AnyExec<'_> {
    fn run_batch<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        match self {
            AnyExec::Pool(pool) => pool.run_batch(tasks),
            AnyExec::Std(std) => std.run_batch(tasks),
        }
    }
}

impl AssistExecutor for AnyExec<'_> {
    fn assist(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        match self {
            AnyExec::Pool(pool) => pool.assist(helpers, body),
            AnyExec::Std(std) => std.assist(helpers, body),
        }
    }
}

/// Extends a resident freezer with an event chunk, routing large
/// closure-stamping batches through pool workers when the session is
/// configured for parallel detection (`threads > 1`): the caller's pool if
/// one was attached via [`Session::on_pool`], the process-shared pool of
/// the configured size otherwise. At `threads == 1` this is a plain
/// sequential [`IncrementalFreezer::extend`] — no batch dispatch at all.
/// Either way the frozen state is byte-identical.
fn extend_freezer_pooled(
    freezer: &mut IncrementalFreezer,
    events: &[TraceEvent],
    threads: usize,
    pool: Option<&ThreadPool>,
) {
    if threads <= 1 {
        freezer.extend(events);
        return;
    }
    let shared = pool.is_none().then(|| ThreadPool::shared(threads));
    let pool = pool.unwrap_or_else(|| shared.as_deref().expect("just built"));
    let executor = PoolExecutor(pool);
    freezer.extend_assisted(events, &FreezeAssist::new(threads, &executor));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record, Cx, ShadowCell};
    use futurerd_dag::source::ChunkedEvents;
    use futurerd_dag::{FunctionId, MemAddr, StrandId};

    fn racy_body(cx: &mut Cx) -> u32 {
        let mut cell = ShadowCell::new(cx, 0u32);
        cx.spawn(|cx| cell.set(cx, 1));
        let v = cell.get(cx);
        cx.sync();
        v
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "futurerd-session-test-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        Store::open(dir).expect("store opens")
    }

    #[test]
    fn chunked_ingest_matches_one_shot_replay() {
        let recorded = record(racy_body);
        let one_shot = Config::structured().replay(&recorded.trace).unwrap();
        for chunk_size in [1, 3, recorded.trace.len()] {
            let mut session = Config::structured().session();
            for chunk in recorded.trace.events().chunks(chunk_size) {
                session.ingest(chunk).unwrap();
            }
            assert!(session.is_complete());
            let detection = session.report().unwrap();
            assert_eq!(
                detection.report().to_string(),
                one_shot.report().to_string(),
                "chunk size {chunk_size}"
            );
            assert_eq!(detection.summary, one_shot.summary);
            assert_eq!(detection.path, Some(DetectionPath::Cold));
        }
    }

    #[test]
    fn live_session_never_refreezes_across_appends() {
        let recorded = record(racy_body);
        let events = recorded.trace.events();
        let cut = events.len() / 2;
        let mut session = Config::structured().session();

        session.ingest(&events[..cut]).unwrap();
        let first = session.report().unwrap();
        assert_eq!(first.path, Some(DetectionPath::Cold));

        session.ingest(&events[cut..]).unwrap();
        let second = session.report().unwrap();
        assert!(
            matches!(second.path, Some(DetectionPath::Incremental { .. })),
            "{:?}",
            second.path
        );
        // A report with nothing new ingested is fully cached.
        let third = session.report().unwrap();
        assert_eq!(third.path, Some(DetectionPath::WarmCached));
        assert_eq!(session.last_path(), third.path);

        let one_shot = Config::structured().replay(&recorded.trace).unwrap();
        for d in [&second, &third] {
            assert_eq!(d.report().to_string(), one_shot.report().to_string());
        }
    }

    #[test]
    fn ingest_from_drains_chunk_queues_and_recorders() {
        let recorded = record(racy_body);
        let expected = Config::structured().replay(&recorded.trace).unwrap();

        let mut chunks = ChunkedEvents::new();
        for chunk in recorded.trace.events().chunks(2) {
            chunks.push_chunk(chunk.to_vec());
        }
        let mut session = Config::structured().session();
        let n = session.ingest_from(&mut chunks).unwrap();
        assert_eq!(n, recorded.trace.len());
        assert_eq!(
            session.report().unwrap().report().to_string(),
            expected.report().to_string()
        );

        // A whole Trace is a source too.
        let mut trace = record(racy_body).trace;
        let mut session = Config::structured().session();
        session.ingest_from(&mut trace).unwrap();
        assert!(trace.is_empty());
        assert_eq!(session.report().unwrap().race_count(), 1);
    }

    #[test]
    fn invalid_chunks_poison_the_session() {
        let mut session = Config::structured().session();
        let recorded = record(racy_body);
        session.ingest(recorded.trace.events()).unwrap();
        // The stream is complete: anything further violates the invariant.
        let err = session
            .ingest(&[TraceEvent::ProgramEnd { last: StrandId(0) }])
            .unwrap_err();
        assert!(err.is_trace(), "{err}");
        assert!(session
            .ingest(&[TraceEvent::ProgramEnd { last: StrandId(0) }])
            .is_err());
        // The last good state still reports.
        assert_eq!(session.report().unwrap().race_count(), 1);
    }

    #[test]
    fn stored_sessions_resume_warm_and_persist_appends() {
        let recorded = record(racy_body);
        let events = recorded.trace.events();
        let cut = events.len() / 2;
        let mut prefix = Trace::new();
        prefix.extend_events(&events[..cut]);

        let mut store = temp_store("resume");
        store.put_trace("grow", &prefix).unwrap();

        // First session: cold, then ingest the rest incrementally.
        let mut session = Config::structured()
            .open_session(&mut store, "grow")
            .unwrap();
        assert_eq!(session.len(), cut);
        let first = session.report().unwrap();
        assert_eq!(first.path, Some(DetectionPath::Cold));
        session.ingest(&events[cut..]).unwrap();
        let second = session.report().unwrap();
        assert!(
            matches!(second.path, Some(DetectionPath::Incremental { .. })),
            "{:?}",
            second.path
        );
        drop(session);

        // Re-opened session resumes from the persisted sidecar: no freeze,
        // no detection — the first report is fully cached.
        let mut session = Config::structured()
            .open_session(&mut store, "grow")
            .unwrap();
        assert!(session.is_complete(), "appends were persisted");
        let third = session.report().unwrap();
        assert_eq!(third.path, Some(DetectionPath::WarmCached));
        drop(session);

        let one_shot = Config::structured().replay(&recorded.trace).unwrap();
        assert_eq!(second.report().to_string(), one_shot.report().to_string());
        assert_eq!(third.report().to_string(), one_shot.report().to_string());

        // The store accounted the session traffic: exactly one cold freeze
        // over the whole life of the entry.
        let stats = store.stats();
        assert_eq!(stats.cold_freezes, 1);
        assert_eq!(stats.incremental_refreezes, 1);
        assert_eq!(stats.warm_cached_hits, 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn stored_sessions_require_full_analysis_and_freezable_algorithms() {
        let mut store = temp_store("reject");
        store.put_trace("t", &record(racy_body).trace).unwrap();
        let err = Config::structured()
            .analysis(Analysis::Reachability)
            .open_session(&mut store, "t")
            .expect_err("partial analyses have no stored index");
        assert!(err.is_unsupported(), "{err}");
        let err = Config::new()
            .algorithm(Algorithm::GraphOracle)
            .open_session(&mut store, "t")
            .expect_err("no frozen form");
        assert!(err.is_store(), "{err}");
        std::fs::remove_dir_all(store.root()).ok();
    }

    /// A synthetic single-strand trace: `ProgramStart`/`StrandStart`, then
    /// one write per address in `addrs` (still executing — a canonical
    /// prefix, extendable).
    fn write_prefix(addrs: &[u64]) -> Vec<TraceEvent> {
        let mut events = vec![
            TraceEvent::ProgramStart {
                root: FunctionId(0),
                first: StrandId(0),
            },
            TraceEvent::StrandStart {
                strand: StrandId(0),
                function: FunctionId(0),
            },
        ];
        events.extend(addrs.iter().map(|&a| TraceEvent::Write {
            strand: StrandId(0),
            addr: MemAddr(a),
            size: 4,
        }));
        events
    }

    #[test]
    fn histogram_drift_triggers_partition_rebalancing() {
        let g = MemAddr::GRANULARITY;
        // 40 granules touched once: P=4 partitions of ~10 accesses each.
        let spread: Vec<u64> = (0..40u64).map(|i| i * g).collect();
        let mut session = Config::structured().threads(4).session();
        session.ingest(&write_prefix(&spread)).unwrap();
        let first = session.report().unwrap();
        assert_eq!(first.path, Some(DetectionPath::Cold));

        // Hammer one granule: the first partition's load drifts far past
        // its fair share, so the session re-partitions.
        let hot: Vec<TraceEvent> = (0..100)
            .map(|_| TraceEvent::Write {
                strand: StrandId(0),
                addr: MemAddr(0),
                size: 4,
            })
            .collect();
        session.ingest(&hot).unwrap();
        let second = session.report().unwrap();
        match second.path {
            Some(DetectionPath::Incremental { rebalanced, .. }) => {
                assert!(rebalanced, "{:?}", second.path)
            }
            other => panic!("expected incremental, got {other:?}"),
        }
        // Identical answer regardless: single-strand writes are race-free.
        assert!(second.is_race_free());

        // A balanced append in a fresh session does not re-partition.
        let mut session = Config::structured().threads(4).session();
        session.ingest(&write_prefix(&spread)).unwrap();
        session.report().unwrap();
        let mild: Vec<TraceEvent> = [5u64, 15, 25, 35]
            .map(|granule| TraceEvent::Write {
                strand: StrandId(0),
                addr: MemAddr(granule * g),
                size: 4,
            })
            .into();
        session.ingest(&mild).unwrap();
        let third = session.report().unwrap();
        match third.path {
            Some(DetectionPath::Incremental { rebalanced, .. }) => {
                assert!(!rebalanced, "{:?}", third.path)
            }
            other => panic!("expected incremental, got {other:?}"),
        }
    }

    #[test]
    fn threaded_detections_aggregate_detector_stats() {
        let recorded = record(racy_body);
        let sequential = Config::new()
            .algorithm(Algorithm::GraphOracle)
            .replay(&recorded.trace)
            .unwrap();
        let seq_stats = sequential.detector_stats.unwrap();
        for threads in [1, 4] {
            let parallel = Config::structured()
                .threads(threads)
                .replay(&recorded.trace)
                .unwrap();
            let par_stats = parallel
                .detector_stats
                .expect("engine paths aggregate partition counters");
            assert_eq!(par_stats.read_checks, seq_stats.read_checks, "P={threads}");
            assert_eq!(par_stats.write_checks, seq_stats.write_checks);
            assert_eq!(par_stats.readers_recorded, seq_stats.readers_recorded);
            assert_eq!(par_stats.readers_cleared, seq_stats.readers_cleared);
            assert_eq!(par_stats.races_found, seq_stats.races_found);
            assert!(par_stats.shadow_pages >= seq_stats.shadow_pages);
        }
    }

    #[test]
    fn fallback_algorithms_session_and_error_semantics() {
        // Oracle sessions replay sequentially per report (always Cold).
        let recorded = record(racy_body);
        let mut session = Config::new().algorithm(Algorithm::GraphOracle).session();
        session.ingest(recorded.trace.events()).unwrap();
        let d = session.report().unwrap();
        assert_eq!(d.path, Some(DetectionPath::Cold));
        assert_eq!(d.race_count(), 1);
        assert!(d.reach_stats.is_some(), "sequential paths keep full stats");

        // SP-Bags refuses futures at report time with the unified error.
        let futures = record(|cx| {
            let fut = cx.create_future(|_| 1u32);
            cx.get_future(fut)
        });
        let mut session = Config::new().algorithm(Algorithm::SpBags).session();
        session.ingest(futures.trace.events()).unwrap();
        assert!(session.report().unwrap_err().is_unsupported());
    }

    #[test]
    fn partial_analysis_replay_stored_is_honored_not_upgraded() {
        let mut store = temp_store("partial");
        store.put_trace("t", &record(racy_body).trace).unwrap();
        let d = Config::general()
            .analysis(Analysis::Reachability)
            .replay_stored(&mut store, "t")
            .unwrap();
        // The requested partial analysis ran: no race report, but
        // reachability stats — previously this silently ran full detection.
        assert!(d.report.is_none());
        assert!(d.reach_stats.unwrap().dsu_ops() > 0);
        // And no sidecar was written for it.
        assert!(!store
            .sidecar_path("t", ReplayAlgorithm::MultiBagsPlus)
            .exists());
        std::fs::remove_dir_all(store.root()).ok();
    }
}
