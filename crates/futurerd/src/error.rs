//! The facade's single error type.
//!
//! The crates underneath keep their own precise errors
//! ([`TraceError`](futurerd_dag::trace::TraceError) for event streams,
//! [`StoreError`](futurerd_store::StoreError) for the persistent store), but
//! every fallible `futurerd` entry point — sessions, the `replay*`
//! wrappers, the store helpers — returns one [`Error`] with typed kinds, so
//! callers match on *what went wrong* without knowing *which layer* a
//! request was routed through.

use futurerd_dag::trace::TraceError;
use futurerd_store::StoreError;

/// Everything that can go wrong at the facade boundary.
///
/// Constructed by `From` conversions from the layer errors; the
/// [`Trace`](Error::Trace) and [`Store`](Error::Store) kinds carry the
/// precise underlying error, while configuration-level refusals (an
/// algorithm that cannot consume the trace, an analysis level a path cannot
/// serve) normalize to [`Unsupported`](Error::Unsupported) regardless of
/// which layer noticed them.
#[derive(Debug)]
pub enum Error {
    /// The event stream is invalid: a codec failure, or a violation of the
    /// canonical serial-DF ordering invariant (with the global stream
    /// position of the offending event).
    Trace(TraceError),
    /// The persistent store refused the request: I/O, a corrupt sidecar, an
    /// unknown trace name, or an algorithm without a frozen form.
    Store(StoreError),
    /// The configuration cannot serve this request — e.g. SP-Bags asked to
    /// consume a trace that contains futures.
    Unsupported {
        /// Human-readable description of the mismatch.
        message: String,
    },
}

impl Error {
    /// A configuration-level refusal.
    pub(crate) fn unsupported(message: impl Into<String>) -> Self {
        Error::Unsupported {
            message: message.into(),
        }
    }

    /// True if this is a trace-validity error (kind [`Error::Trace`]).
    pub fn is_trace(&self) -> bool {
        matches!(self, Error::Trace(_))
    }

    /// True if this is a store error (kind [`Error::Store`]).
    pub fn is_store(&self) -> bool {
        matches!(self, Error::Store(_))
    }

    /// True if this is a configuration refusal (kind
    /// [`Error::Unsupported`]).
    pub fn is_unsupported(&self) -> bool {
        matches!(self, Error::Unsupported { .. })
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Trace(e) => write!(f, "trace error: {e}"),
            Error::Store(e) => write!(f, "store error: {e}"),
            Error::Unsupported { message } => write!(f, "unsupported: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Trace(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Unsupported { .. } => None,
        }
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        match e {
            // An algorithm × trace mismatch is a configuration refusal, not
            // a malformed stream — normalize it.
            TraceError::Unsupported { message } => Error::Unsupported { message },
            other => Error::Trace(other),
        }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        match e {
            // The store wraps stream problems in its own error; unwrap them
            // so callers see one Trace kind wherever the stream was bad.
            StoreError::Trace(trace) => Error::from(trace),
            other => Error::Store(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_and_normalize() {
        let trace_err = Error::from(TraceError::TrailingData);
        assert!(trace_err.is_trace() && !trace_err.is_store());

        // TraceError::Unsupported normalizes to the Unsupported kind...
        let unsupported = Error::from(TraceError::Unsupported {
            message: "no futures".into(),
        });
        assert!(unsupported.is_unsupported());

        // ...and StoreError::Trace unwraps to the Trace kind.
        let wrapped = Error::from(StoreError::Trace(TraceError::TrailingData));
        assert!(wrapped.is_trace());

        let store_err = Error::from(StoreError::UnknownTrace("x".into()));
        assert!(store_err.is_store());
        assert!(store_err.to_string().contains("no trace named"));
    }
}
