//! Complexity ablation: micro-benchmarks of the reachability substrates
//! (disjoint sets and the transitive-closure dag `R`) backing Theorems 4.1
//! and 5.1, plus a detection-scaling sweep on `lcs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_bench::{bench_params, run_config, Algorithm, Config};
use futurerd_core::reachability::RGraph;
use futurerd_dsu::DisjointSets;
use futurerd_workloads::{FutureMode, WorkloadKind};
use std::time::Duration;

fn dsu_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_dsu");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("union_find_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut dsu = DisjointSets::with_capacity(n);
                let ids: Vec<_> = (0..n).map(|_| dsu.make_set()).collect();
                for w in ids.windows(2) {
                    dsu.union(w[0], w[1]);
                }
                let mut hits = 0u64;
                for &e in &ids {
                    if dsu.find(e) == dsu.find(ids[0]) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn rgraph_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rgraph");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for &k in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("closure_chain", k), &k, |b, &k| {
            b.iter(|| {
                let mut g = RGraph::new();
                let nodes: Vec<_> = (0..k).map(|_| g.add_node()).collect();
                for w in nodes.windows(2) {
                    g.add_arc(w[0], w[1]);
                }
                g.reaches(nodes[0], nodes[k - 1])
            })
        });
    }
    group.finish();
}

fn detection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_lcs_full_detection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for &n in &[64usize, 128, 256] {
        let params = bench_params(WorkloadKind::Lcs).with_n(n).with_base(16);
        group.bench_with_input(BenchmarkId::new("multibags", n), &n, |b, _| {
            b.iter(|| {
                run_config(
                    WorkloadKind::Lcs,
                    FutureMode::Structured,
                    Algorithm::MultiBags,
                    Config::Full,
                    &params,
                )
                .1
            })
        });
        group.bench_with_input(BenchmarkId::new("multibags_plus", n), &n, |b, _| {
            b.iter(|| {
                run_config(
                    WorkloadKind::Lcs,
                    FutureMode::General,
                    Algorithm::MultiBagsPlus,
                    Config::Full,
                    &params,
                )
                .1
            })
        });
    }
    group.finish();
}

criterion_group!(benches, dsu_micro, rgraph_micro, detection_scaling);
criterion_main!(benches);
