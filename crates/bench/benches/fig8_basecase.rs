//! Figure 8: MultiBags vs MultiBags+ reachability maintenance on structured
//! programs while the base case (and therefore `k`, the number of `get_fut`
//! operations) varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_bench::{bench_params, run_config, Algorithm, Config};
use futurerd_workloads::{FutureMode, WorkloadKind};
use std::time::Duration;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_basecase_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let sweep: [(WorkloadKind, &[usize]); 3] = [
        (WorkloadKind::Lcs, &[32, 16, 8]),
        (WorkloadKind::Sw, &[16, 8]),
        (WorkloadKind::Mm, &[16, 8, 4]),
    ];
    for (kind, bases) in sweep {
        for &base in bases {
            let params = bench_params(kind).with_base(base);
            for (alg, label) in [
                (Algorithm::MultiBags, "multibags"),
                (Algorithm::MultiBagsPlus, "multibags_plus"),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}_B{}", kind.name(), base), label),
                    &alg,
                    |b, &alg| {
                        b.iter(|| {
                            run_config(
                                kind,
                                FutureMode::Structured,
                                alg,
                                Config::Reachability,
                                &params,
                            )
                            .1
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
