//! Trace pipeline costs: what does it cost to *record* an execution, and
//! what does it cost to *replay-detect* on the recorded trace?
//!
//! The paper's detectors pay execution + detection on every run; the trace
//! subsystem splits that into a one-time record cost and a per-detector
//! replay cost. Three measurements per workload:
//!
//! * `record`     — run the workload under a `TraceRecorder` (no detection);
//! * `replay`     — feed the pre-recorded trace through the designated full
//!   detector (MultiBags for structured, MultiBags+ for general), without
//!   re-executing the workload;
//! * `inprocess`  — classic single-pass execution + full detection, the
//!   baseline the split is compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_bench::bench_params;
use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::TraceRecorder;
use futurerd_workloads::{run_workload, FutureMode, WorkloadKind, WorkloadParams};
use std::time::Duration;

fn record(kind: WorkloadKind, mode: FutureMode, params: &WorkloadParams) -> Trace {
    let (recorder, _) = run_workload(kind, mode, params, TraceRecorder::new());
    recorder.into_trace()
}

fn fig_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_trace_record_vs_replay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let cells = [
        (
            WorkloadKind::Lcs,
            FutureMode::Structured,
            ReplayAlgorithm::MultiBags,
        ),
        (
            WorkloadKind::Sw,
            FutureMode::Structured,
            ReplayAlgorithm::MultiBags,
        ),
        (
            WorkloadKind::Bst,
            FutureMode::General,
            ReplayAlgorithm::MultiBagsPlus,
        ),
        (
            WorkloadKind::Dedup,
            FutureMode::General,
            ReplayAlgorithm::MultiBagsPlus,
        ),
    ];
    for (kind, mode, algorithm) in cells {
        let params = bench_params(kind);
        let trace = record(kind, mode, &params);
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "record"),
            &(kind, mode),
            |b, &(kind, mode)| b.iter(|| record(kind, mode, &params).len()),
        );
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "replay"),
            &algorithm,
            |b, &algorithm| b.iter(|| replay_detect_unchecked(&trace, algorithm).race_count()),
        );
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "inprocess"),
            &(kind, mode),
            |b, &(kind, mode)| {
                b.iter(|| match mode {
                    FutureMode::Structured => {
                        run_workload(kind, mode, &params, RaceDetector::<MultiBags>::structured())
                            .0
                            .report()
                            .race_count()
                    }
                    FutureMode::General => run_workload(
                        kind,
                        mode,
                        &params,
                        RaceDetector::<MultiBagsPlus>::general(),
                    )
                    .0
                    .report()
                    .race_count(),
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig_trace);
criterion_main!(benches);
