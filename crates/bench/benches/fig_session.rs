//! Session economics: what does a long-lived `futurerd::Session` buy a
//! client watching a *growing* execution?
//!
//! Same large seeded genprog traces as `fig_par_detect`/`fig_store`, fed in
//! `CHUNKS` equal appends with a verdict requested after every append — the
//! `futurerd-trace follow` workload. Per algorithm:
//!
//! * `one_shot`        — a single `Config::replay` of the full trace: the
//!   floor for producing one verdict from scratch;
//! * `session_follow`  — one session, `CHUNKS` ingests, a report after each
//!   (so `CHUNKS` verdicts): the freeze happens once, spread across the
//!   appends, and each report re-runs only the partitions the append
//!   touched;
//! * `replay_each`     — the pre-session client: a fresh one-shot replay of
//!   the growing prefix after every append (`CHUNKS` verdicts, `CHUNKS`
//!   full freezes). `session_follow` must beat this decisively — that gap
//!   is the point of the session API.
//!
//! Scale the traces with `FUTURERD_SCALE`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd::{Algorithm, Config};
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use std::time::Duration;

const CHUNKS: usize = 8;

fn big_trace(general: bool, seed: u64) -> Trace {
    let scale = std::env::var("FUTURERD_SCALE")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(1)
        .max(1);
    let cfg = if general {
        GenConfig {
            max_depth: 9 + scale.ilog2(),
            max_actions: 14,
            num_locations: 96 * scale,
            max_accesses: 12,
            general_futures: true,
            w_compute: 10,
            w_get: 2,
            w_create: 2,
            w_spawn: 3,
            w_sync: 1,
        }
    } else {
        GenConfig {
            max_depth: 7 + scale.ilog2(),
            max_actions: 10,
            num_locations: 64 * scale,
            max_accesses: 6,
            ..GenConfig::structured()
        }
    };
    let (trace, _) = record_spec(&generate_program(&cfg, seed));
    trace
}

fn fig_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_session");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let cells = [
        (Algorithm::MultiBags, false, 0xf19u64),
        (Algorithm::MultiBagsPlus, true, 0x2au64),
    ];
    for (algorithm, general, seed) in cells {
        let trace = big_trace(general, seed);
        let config = Config::new().algorithm(algorithm);
        let name = match algorithm {
            Algorithm::MultiBags => "multibags",
            _ => "multibags_plus",
        };
        let chunk_len = trace.len().div_ceil(CHUNKS);
        eprintln!(
            "fig_session: {name} trace, {} events in {CHUNKS} chunks of ≤{chunk_len}",
            trace.len()
        );

        group.bench_with_input(BenchmarkId::new(name, "one_shot"), &trace, |b, trace| {
            b.iter(|| config.replay(trace).expect("canonical").race_count())
        });

        group.bench_with_input(
            BenchmarkId::new(name, format!("session_follow_{CHUNKS}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut session = config.session();
                    let mut races = 0;
                    for chunk in trace.events().chunks(chunk_len) {
                        session.ingest(chunk).expect("canonical prefix");
                        races = session.report().expect("prefix reports").race_count();
                    }
                    races
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new(name, format!("replay_each_{CHUNKS}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut races = 0;
                    let mut prefix = Trace::new();
                    for chunk in trace.events().chunks(chunk_len) {
                        prefix.extend_events(chunk);
                        // Growing prefixes are not complete traces; a
                        // pre-session client re-runs a fresh session per
                        // verdict (one-shot replay requires completeness).
                        let mut one_shot = config.session();
                        one_shot.ingest(prefix.events()).expect("canonical prefix");
                        races = one_shot.report().expect("reports").race_count();
                    }
                    races
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig_session);
criterion_main!(benches);
