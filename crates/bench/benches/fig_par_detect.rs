//! Parallel detection engine costs: sequential replay-detect vs the
//! two-pass sharded engine at P ∈ {1, 2, 4, 8} workers.
//!
//! The workload is a large seeded genprog trace (one structured, one
//! general), the same shape the determinism property tests assert
//! byte-identical reports on. Three kinds of measurements per
//! algorithm:
//!
//! * `seq`        — classic single-pass `replay_detect`;
//! * `freeze`     — pass 1 alone (build the frozen `ReachIndex`, no
//!   detection): the sequential fraction every parallel run pays;
//! * `par/P<n>`   — the full two-pass engine with `n` workers.
//!
//! On a multi-core host `par/P4` should beat `seq` (detection dominates and
//! shards perfectly); on a single-core host it degenerates to the freeze
//! overhead plus sequential detection, which keeps the regression signal
//! honest either way. Scale the trace with `FUTURERD_SCALE`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_core::parallel::{par_replay_detect, ReachIndex};
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use std::time::Duration;

fn big_trace(general: bool, seed: u64) -> Trace {
    let scale = std::env::var("FUTURERD_SCALE")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(1)
        .max(1);
    let cfg = if general {
        // Access-dense general futures (~90 accesses per get): the regime
        // real workloads live in, where detection — not the k² closure
        // freeze — dominates and sharding pays off.
        GenConfig {
            max_depth: 9 + scale.ilog2(),
            max_actions: 14,
            num_locations: 96 * scale,
            max_accesses: 12,
            general_futures: true,
            w_compute: 10,
            w_get: 2,
            w_create: 2,
            w_spawn: 3,
            w_sync: 1,
        }
    } else {
        GenConfig {
            max_depth: 7 + scale.ilog2(),
            max_actions: 10,
            num_locations: 64 * scale,
            max_accesses: 6,
            ..GenConfig::structured()
        }
    };
    let (trace, _) = record_spec(&generate_program(&cfg, seed));
    trace
}

fn fig_par_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_par_detect");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    // Seeds picked so both traces are large (≥ ~24k events) at scale 1.
    let cells = [
        (ReplayAlgorithm::MultiBags, false, 0xf19u64),
        (ReplayAlgorithm::MultiBagsPlus, true, 0x2au64),
    ];
    for (algorithm, general, seed) in cells {
        let trace = big_trace(general, seed);
        eprintln!(
            "fig_par_detect: {} trace, {} events",
            algorithm.name(),
            trace.len()
        );
        group.bench_with_input(
            BenchmarkId::new(algorithm.name(), "seq"),
            &algorithm,
            |b, &algorithm| b.iter(|| replay_detect_unchecked(&trace, algorithm).race_count()),
        );
        group.bench_with_input(
            BenchmarkId::new(algorithm.name(), "freeze"),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    ReachIndex::freeze(&trace, algorithm)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets()
                })
            },
        );
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), format!("par/P{threads}")),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        par_replay_detect(&trace, algorithm, threads)
                            .expect("canonical trace")
                            .race_count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig_par_detect);
criterion_main!(benches);
