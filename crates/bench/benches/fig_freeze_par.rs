//! Pass-1 freeze cost, sequential vs work-assisted: builds the frozen
//! `ReachIndex` for MultiBags+ on get-dense adversarial `k ≈ n` traces —
//! the regime where timed-closure stamping (the `O(k²)` part of the freeze)
//! dominates — and compares the classic sequential freeze against the
//! work-assisted freeze at P ∈ {1, 2, 4, 8} pool workers.
//!
//! At P = 1 the assisted path must cost what the sequential path costs
//! (the batch stage degenerates to the same loop, no pool round-trips); on
//! a multi-core host P ≥ 2 should recover a slice of the stamping time. On
//! a single-core host the P ≥ 2 rows measure pure scheduling overhead —
//! still a useful regression signal, just not a speedup. Scale `n` with
//! `FUTURERD_SCALE`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd::{PoolExecutor, ThreadPool};
use futurerd_core::parallel::{FreezeAssist, ReachIndex};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_runtime::trace::record_spec;
use futurerd_workloads::fuzzgen::adversarial_kn;
use std::time::Duration;

fn fig_freeze_par(c: &mut Criterion) {
    let scale = std::env::var("FUTURERD_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let mut group = c.benchmark_group("fig_freeze_par");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let algorithm = ReplayAlgorithm::MultiBagsPlus;
    for n in [64usize, 128, 256] {
        let n = n * scale;
        let program = adversarial_kn(n, 0xfeed);
        let (trace, _) = record_spec(&program.spec);
        group.bench_with_input(
            BenchmarkId::new(format!("n{n}"), "seq"),
            &trace,
            |b, trace| {
                b.iter(|| {
                    ReachIndex::freeze(trace, algorithm)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets()
                })
            },
        );
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::shared(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("assist/P{threads}")),
                &trace,
                |b, trace| {
                    let executor = PoolExecutor(&pool);
                    let assist = FreezeAssist::new(threads, &executor);
                    b.iter(|| {
                        ReachIndex::freeze_assisted(trace, algorithm, &assist)
                            .expect("canonical trace")
                            .expect("freezable algorithm")
                            .num_attached_sets()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig_freeze_par);
criterion_main!(benches);
