//! Figure 7: general-futures benchmarks under the four configurations with
//! MultiBags+.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_bench::{bench_params, run_config, Algorithm, Config};
use futurerd_workloads::{FutureMode, WorkloadKind};
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_general_multibags_plus");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for kind in WorkloadKind::ALL {
        let params = bench_params(kind);
        for config in Config::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), config.label()),
                &(kind, config),
                |b, &(kind, config)| {
                    b.iter(|| {
                        run_config(
                            kind,
                            FutureMode::General,
                            Algorithm::MultiBagsPlus,
                            config,
                            &params,
                        )
                        .1
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
