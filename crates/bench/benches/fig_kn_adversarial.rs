//! Adversarial `k ≈ n` sweep: detection cost when the number of `get_fut`
//! operations `k` tracks the number of parallel constructs `n` (here
//! `k = 2n - 2`, the fuzz generator's worst-case chain). This is the regime
//! where MultiBags+'s attached-bag machinery pays its O(k²) reachability
//! maintenance, while plain MultiBags (approximate on these multi-touch
//! traces) and conservative SP-Bags stay near-linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_runtime::trace::record_spec;
use futurerd_workloads::fuzzgen::adversarial_kn;
use std::time::Duration;

fn fig_kn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_kn_adversarial");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for n in [16usize, 32, 64, 128] {
        let program = adversarial_kn(n, 0xbead);
        let (trace, _) = record_spec(&program.spec);
        for (alg, label) in [
            (ReplayAlgorithm::MultiBags, "multibags"),
            (ReplayAlgorithm::MultiBagsPlus, "multibags_plus"),
            (ReplayAlgorithm::SpBagsConservative, "spbags_cons"),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("n{n}"), label), &alg, |b, &alg| {
                b.iter(|| replay_detect_unchecked(&trace, alg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig_kn);
criterion_main!(benches);
