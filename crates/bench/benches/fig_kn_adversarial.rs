//! Adversarial `k ≈ n` sweep: detection cost when the number of `get_fut`
//! operations `k` tracks the number of parallel constructs `n` (here
//! `k = 2n - 2`, the fuzz generator's worst-case chain). This is the regime
//! where MultiBags+'s attached-bag machinery pays its O(k²) reachability
//! maintenance, while plain MultiBags (approximate on these multi-touch
//! traces) and conservative SP-Bags stay near-linear.
//!
//! Two extra rows per `n` isolate pass 1 of the parallel engine on the same
//! trace: `freeze_seq` (classic sequential freeze) and `freeze_par` (the
//! work-assisted freeze with a 2-worker pool) — see `fig_freeze_par` for
//! the full worker-count sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd::{PoolExecutor, ThreadPool};
use futurerd_core::parallel::{FreezeAssist, ReachIndex};
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_runtime::trace::record_spec;
use futurerd_workloads::fuzzgen::adversarial_kn;
use std::time::Duration;

fn fig_kn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_kn_adversarial");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for n in [16usize, 32, 64, 128] {
        let program = adversarial_kn(n, 0xbead);
        let (trace, _) = record_spec(&program.spec);
        for (alg, label) in [
            (ReplayAlgorithm::MultiBags, "multibags"),
            (ReplayAlgorithm::MultiBagsPlus, "multibags_plus"),
            (ReplayAlgorithm::SpBagsConservative, "spbags_cons"),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("n{n}"), label), &alg, |b, &alg| {
                b.iter(|| replay_detect_unchecked(&trace, alg))
            });
        }
        // Pass-1 freeze alone on the same trace: the closure stamping this
        // regime maximizes, sequential vs work-assisted at P = 2.
        let algorithm = ReplayAlgorithm::MultiBagsPlus;
        group.bench_with_input(
            BenchmarkId::new(format!("n{n}"), "freeze_seq"),
            &trace,
            |b, trace| {
                b.iter(|| {
                    ReachIndex::freeze(trace, algorithm)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets()
                })
            },
        );
        let pool = ThreadPool::shared(2);
        group.bench_with_input(
            BenchmarkId::new(format!("n{n}"), "freeze_par"),
            &trace,
            |b, trace| {
                let executor = PoolExecutor(&pool);
                let assist = FreezeAssist::new(2, &executor);
                b.iter(|| {
                    ReachIndex::freeze_assisted(trace, algorithm, &assist)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig_kn);
criterion_main!(benches);
