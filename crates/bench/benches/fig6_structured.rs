//! Figure 6: structured-futures benchmarks under the four configurations
//! with MultiBags.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_bench::{bench_params, run_config, Algorithm, Config};
use futurerd_workloads::{FutureMode, WorkloadKind};
use std::time::Duration;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_structured_multibags");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for kind in WorkloadKind::ALL {
        let params = bench_params(kind);
        for config in Config::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), config.label()),
                &(kind, config),
                |b, &(kind, config)| {
                    b.iter(|| {
                        run_config(
                            kind,
                            FutureMode::Structured,
                            Algorithm::MultiBags,
                            config,
                            &params,
                        )
                        .1
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
