//! Detection-store economics: what does a warm `FRDIDX` load buy over
//! refreezing, and what does incremental re-detection buy over cold
//! re-detection after an append?
//!
//! Same large seeded genprog traces as `fig_par_detect`. Per algorithm:
//!
//! * `freeze`      — cold pass 1 (replay the whole trace through the
//!   freezing observer): the cost a warm load avoids;
//! * `warm_load`   — decode the sidecar + rebuild the freezer + snapshot
//!   the index (no detection): must be **strictly cheaper** than `freeze`;
//! * `warm_detect` — a full warm `Store::detect` round trip (load + merge
//!   cached outcomes);
//! * `incremental` — a full `Store::detect` after ~5% of the trace was
//!   appended: suffix refreeze + touched-partition re-runs + sidecar
//!   rewrite, vs refreezing and re-detecting everything.
//!
//! Scale the traces with `FUTURERD_SCALE`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use futurerd_core::parallel::IncrementalFreezer;
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use futurerd_store::{decode_sidecar, Store};
use std::time::Duration;

fn big_trace(general: bool, seed: u64) -> Trace {
    let scale = std::env::var("FUTURERD_SCALE")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(1)
        .max(1);
    let cfg = if general {
        GenConfig {
            max_depth: 9 + scale.ilog2(),
            max_actions: 14,
            num_locations: 96 * scale,
            max_accesses: 12,
            general_futures: true,
            w_compute: 10,
            w_get: 2,
            w_create: 2,
            w_spawn: 3,
            w_sync: 1,
        }
    } else {
        GenConfig {
            max_depth: 7 + scale.ilog2(),
            max_actions: 10,
            num_locations: 64 * scale,
            max_accesses: 6,
            ..GenConfig::structured()
        }
    };
    let (trace, _) = record_spec(&generate_program(&cfg, seed));
    trace
}

fn fig_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_store");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let cells = [
        (ReplayAlgorithm::MultiBags, false, 0xf19u64),
        (ReplayAlgorithm::MultiBagsPlus, true, 0x2au64),
    ];
    let dir = std::env::temp_dir().join(format!("futurerd-fig-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    for (algorithm, general, seed) in cells {
        let trace = big_trace(general, seed);
        let mut store = Store::open(&dir).expect("store opens");
        store.put_trace("t", &trace).expect("trace stores");
        store.detect("t", algorithm, 1).expect("cold detect");
        let sidecar_bytes =
            std::fs::read(store.sidecar_path("t", algorithm)).expect("sidecar written");
        eprintln!(
            "fig_store: {} trace, {} events, sidecar {} bytes",
            algorithm.name(),
            trace.len(),
            sidecar_bytes.len()
        );

        group.bench_with_input(
            BenchmarkId::new(algorithm.name(), "freeze"),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    let mut fz = IncrementalFreezer::new(algorithm).expect("freezable");
                    fz.extend(trace.events());
                    fz.accesses().len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(algorithm.name(), "warm_load"),
            &sidecar_bytes,
            |b, bytes| {
                b.iter(|| {
                    let sidecar = decode_sidecar(bytes).expect("valid sidecar");
                    let fz = IncrementalFreezer::from_raw(sidecar.freeze).expect("valid state");
                    let index = fz.snapshot_index();
                    (fz.accesses().len(), index.num_attached_sets())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(algorithm.name(), "warm_detect"),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    store
                        .detect("t", algorithm, 1)
                        .expect("warm detect")
                        .report
                        .race_count()
                })
            },
        );

        // Incremental: a sidecar frozen at 95% of the trace, the trace file
        // already holding all of it. Each iteration restores that sidecar
        // and re-detects — suffix refreeze + touched partitions only.
        let cut = trace.len() * 95 / 100;
        let mut prefix = Trace::new();
        prefix.extend_events(&trace.events()[..cut]);
        store.put_trace("t2", &prefix).expect("prefix stores");
        store.detect("t2", algorithm, 1).expect("prefix detect");
        let prefix_sidecar =
            std::fs::read(store.sidecar_path("t2", algorithm)).expect("sidecar written");
        store.put_trace("t2", &trace).expect("full trace stores");
        let sidecar_path = store.sidecar_path("t2", algorithm);
        group.bench_with_input(
            BenchmarkId::new(algorithm.name(), "incremental"),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    std::fs::write(&sidecar_path, &prefix_sidecar).expect("restore sidecar");
                    store
                        .detect("t2", algorithm, 1)
                        .expect("incremental detect")
                        .report
                        .race_count()
                })
            },
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

criterion_group!(benches, fig_store);
criterion_main!(benches);
