//! End-to-end CLI check for the timeline exporters: `futurerd-trace
//! replay --trace-out` must emit a valid Chrome-trace JSON document whose
//! summed top-level stage durations reconcile — nanosecond for nanosecond
//! — with the aggregate totals the same run writes via `--metrics-out`.
//!
//! Runs the real binary (`CARGO_BIN_EXE_futurerd-trace`) against a
//! freshly recorded trace in a temp directory, then cross-checks the two
//! artifacts with the in-crate JSON reader.

use futurerd_bench::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_futurerd-trace")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futurerd-cli-trace-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(trace_bin())
        .args(args)
        .output()
        .expect("spawn futurerd-trace");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn record_fixture(dir: &Path) -> PathBuf {
    let trace = dir.join("fixture.frd");
    let (stdout, stderr, ok) = run(&[
        "record",
        "--workload",
        "lcs",
        "--mode",
        "general",
        "--size",
        "tiny",
        "--seed",
        "11",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "record failed\nstdout: {stdout}\nstderr: {stderr}");
    assert!(trace.exists(), "record did not write {}", trace.display());
    trace
}

/// Per-stage `(total_dur_ns, count)` summed from the Chrome-trace "X"
/// events, using the exact `args.dur_ns` payload (the `dur` field is
/// microseconds and only carries 3 decimals).
fn chrome_stage_totals(doc: &Json) -> BTreeMap<String, (u64, u64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for event in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = event.get("name").unwrap().as_str().unwrap().to_string();
        let args = event.get("args").expect("X events carry exact ns args");
        let dur_ns = args.get("dur_ns").unwrap().as_u64().unwrap();
        let start_ns = args.get("start_ns").unwrap().as_u64().unwrap();
        let end_ns = args.get("end_ns").unwrap().as_u64().unwrap();
        assert_eq!(end_ns - start_ns, dur_ns, "{name}: inconsistent ns args");
        let entry = totals.entry(name).or_insert((0, 0));
        entry.0 += dur_ns;
        entry.1 += 1;
    }
    totals
}

#[test]
fn replay_trace_out_is_valid_chrome_json_and_reconciles_with_metrics() {
    let dir = temp_dir("reconcile");
    let trace = record_fixture(&dir);
    let timeline_path = dir.join("timeline.json");
    let metrics_path = dir.join("metrics.json");

    let (stdout, stderr, ok) = run(&[
        "replay",
        "--input",
        trace.to_str().unwrap(),
        "--algorithm",
        "multibags+",
        "--threads",
        "2",
        "--trace-out",
        timeline_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert!(ok, "replay failed\nstdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("timeline written to"),
        "missing timeline confirmation in: {stdout}"
    );

    // The timeline artifact parses as one JSON document of the Chrome
    // trace-event object form, with thread-name metadata and complete
    // ("X") events.
    let timeline_text = std::fs::read_to_string(&timeline_path).expect("timeline written");
    let doc = Json::parse(&timeline_text).expect("valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("thread_name")),
        "thread_name metadata events missing"
    );
    assert_eq!(
        doc.get("otherData")
            .and_then(|d| d.get("dropped"))
            .and_then(Json::as_u64),
        Some(0),
        "a default-capacity ring must not drop on this workload"
    );

    // Every X event is internally consistent and lands on a declared tid.
    let declared_tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .map(|e| e.get("tid").unwrap().as_u64().unwrap())
        .collect();
    for event in events {
        if event.get("ph").and_then(Json::as_str) == Some("X") {
            let tid = event.get("tid").unwrap().as_u64().unwrap();
            assert!(
                declared_tids.contains(&tid),
                "X event on undeclared tid {tid}"
            );
        }
    }

    // Reconciliation: the journal's per-stage sums equal the metrics
    // snapshot's totals exactly for the disjoint top-level stages (both
    // views are written from the same measurement at span close).
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics written");
    let mut aggregate: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for line in metrics_text.lines() {
        let row = Json::parse(line).expect("JSON-lines metrics");
        if row.get("type").and_then(Json::as_str) != Some("stage") {
            continue;
        }
        aggregate.insert(
            row.get("name").unwrap().as_str().unwrap().to_string(),
            (
                row.get("total_ns").unwrap().as_u64().unwrap(),
                row.get("count").unwrap().as_u64().unwrap(),
            ),
        );
    }
    let journal = chrome_stage_totals(&doc);
    for stage in ["validate", "freeze", "detect", "merge"] {
        let (journal_ns, journal_count) = journal
            .get(stage)
            .copied()
            .unwrap_or_else(|| panic!("stage '{stage}' missing from the Chrome trace"));
        let (aggregate_ns, aggregate_count) = aggregate
            .get(stage)
            .copied()
            .unwrap_or_else(|| panic!("stage '{stage}' missing from the metrics export"));
        assert_eq!(
            journal_ns, aggregate_ns,
            "{stage}: Chrome-trace total diverged from --metrics-out total"
        );
        assert_eq!(
            journal_count, aggregate_count,
            "{stage}: interval count diverged from span count"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeline_flag_prints_text_timeline_without_changing_verdict() {
    let dir = temp_dir("text");
    let trace = record_fixture(&dir);

    let trace_arg = trace.to_str().unwrap();
    let (plain, _, ok) = run(&["replay", "--input", trace_arg, "--algorithm", "multibags"]);
    assert!(ok, "plain replay failed");
    let (with_timeline, _, ok) = run(&[
        "replay",
        "--input",
        trace_arg,
        "--algorithm",
        "multibags",
        "--timeline",
    ]);
    assert!(ok, "replay --timeline failed");

    // The text timeline renders the aligned interval table after the
    // report; the detection verdict line itself is unchanged.
    assert!(
        with_timeline.contains("thread") && with_timeline.contains("stage"),
        "timeline table header missing in: {with_timeline}"
    );
    // Compare the counts only: the trailing "(elapsed)" differs run to run.
    let verdict = |s: &str| {
        s.lines()
            .find(|l| l.contains("racy granules"))
            .map(|l| l.split("  (").next().unwrap_or(l).trim_end().to_string())
    };
    assert_eq!(
        verdict(&plain),
        verdict(&with_timeline),
        "verdict line changed under --timeline"
    );

    std::fs::remove_dir_all(&dir).ok();
}
