//! Self-tests for the `futurerd-trace regress` harness, via the real
//! binary: a fresh self-baseline must compare clean (exit 0), and a
//! planted regression (`--inflate`, the harness's self-test knob) must be
//! caught and fail the run (nonzero exit) — the same invariants the CI
//! regress step relies on to know the harness itself still works.

use futurerd_bench::json::Json;
use futurerd_bench::regress::{compare, load_results, noise_margin, BenchResult, Verdict};
use std::path::PathBuf;
use std::process::Command;

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_futurerd-trace")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futurerd-regress-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct Run {
    stdout: String,
    stderr: String,
    code: Option<i32>,
}

fn run_in(dir: &PathBuf, args: &[&str]) -> Run {
    let out = Command::new(trace_bin())
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn futurerd-trace");
    Run {
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        code: out.status.code(),
    }
}

fn repo_baseline() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_baseline.json")
}

/// One real smoke measurement (the cheapest group keeps this test fast),
/// saved as a fresh baseline document via `--out`. The comparison this
/// run prints (against the checked-in baseline) is incidental — machine
/// noise may flag it either way — only the written document matters here.
fn fresh_baseline(dir: &PathBuf) -> PathBuf {
    let baseline = dir.join("baseline.json");
    let run = run_in(
        dir,
        &[
            "regress",
            "--against",
            repo_baseline().to_str().unwrap(),
            "--bench",
            "fig8_basecase",
            "--samples",
            "3",
            "--out",
            baseline.to_str().unwrap(),
            "--no-trajectory",
        ],
    );
    assert!(
        baseline.exists(),
        "--out did not write a baseline\nstdout: {}\nstderr: {}",
        run.stdout,
        run.stderr
    );
    baseline
}

#[test]
fn self_baseline_passes_and_planted_regression_fails() {
    let dir = temp_dir("cli");
    let baseline = fresh_baseline(&dir);
    let baseline_arg = baseline.to_str().unwrap();

    // Comparing the measured document against itself is the harness's
    // self-consistency check: identical numbers, zero regressions, exit 0.
    let clean = run_in(
        &dir,
        &[
            "regress",
            "--against",
            baseline_arg,
            "--from",
            baseline_arg,
            "--no-trajectory",
        ],
    );
    assert_eq!(
        clean.code,
        Some(0),
        "self-comparison must pass\nstdout: {}\nstderr: {}",
        clean.stdout,
        clean.stderr
    );
    assert!(
        !clean.stdout.contains("REGRESSED"),
        "self-comparison flagged a regression: {}",
        clean.stdout
    );

    // Planting a 10x slowdown on the same document must be caught: every
    // compared id regresses and the exit code goes nonzero.
    let planted = run_in(
        &dir,
        &[
            "regress",
            "--against",
            baseline_arg,
            "--from",
            baseline_arg,
            "--inflate",
            "10",
            "--no-trajectory",
        ],
    );
    assert_ne!(
        planted.code,
        Some(0),
        "a 10x planted regression must fail the run\nstdout: {}",
        planted.stdout
    );
    assert!(
        planted.stdout.contains("REGRESSED"),
        "planted regression not reported: {}",
        planted.stdout
    );
    assert!(
        planted.stderr.contains("regress: FAILED"),
        "failure summary missing on stderr: {}",
        planted.stderr
    );

    // The trajectory sidecar: a comparison WITHOUT --no-trajectory appends
    // exactly one parseable JSON line recording the verdict counts.
    let logged = run_in(
        &dir,
        &["regress", "--against", baseline_arg, "--from", baseline_arg],
    );
    assert_eq!(logged.code, Some(0), "logged self-comparison must pass");
    let trajectory = dir.join("BENCH_trajectory.jsonl");
    let text = std::fs::read_to_string(&trajectory).expect("trajectory appended");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "exactly one trajectory entry expected");
    let entry = Json::parse(lines[0]).expect("trajectory line is JSON");
    assert_eq!(entry.get("regressed").and_then(Json::as_u64), Some(0));
    assert!(entry.get("ids").and_then(Json::as_u64).unwrap_or(0) > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_baseline_is_an_error_not_a_pass() {
    let dir = temp_dir("missing");
    let run = run_in(
        &dir,
        &[
            "regress",
            "--against",
            "no-such-baseline.json",
            "--from",
            "no-such-run.json",
            "--no-trajectory",
        ],
    );
    assert_ne!(
        run.code,
        Some(0),
        "a missing baseline must not pass silently: {}",
        run.stdout
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checked_in_baseline_loads_and_verdict_logic_is_noise_aware() {
    // The repo's real baseline document must stay loadable by the harness.
    let doc = load_results(repo_baseline().to_str().unwrap()).expect("checked-in baseline loads");
    assert!(
        doc.results.len() > 100,
        "baseline unexpectedly small: {} ids",
        doc.results.len()
    );

    // Verdicts honor the per-id noise margin derived from the baseline's
    // own spread: inside the margin is Ok, beyond it regresses, a missing
    // id is New.
    let base = BenchResult {
        id: "g/b/v".to_string(),
        mean_ns: 100_000,
        min_ns: 90_000,
        max_ns: 110_000,
        samples: 10,
        iters_per_sample: 1,
    };
    // 2x the 20% spread is 0.4, floored at MIN_MARGIN.
    let margin = noise_margin(&base);
    assert_eq!(margin, 0.5);
    let at = |mean_ns: u64| BenchResult {
        mean_ns,
        ..base.clone()
    };
    let verdict = |run: &BenchResult| {
        compare(std::slice::from_ref(&base), std::slice::from_ref(run))[0].verdict
    };
    let mean = base.mean_ns as f64;
    assert_eq!(
        verdict(&at((mean * (1.0 + margin) * 0.99) as u64)),
        Verdict::Ok
    );
    assert_eq!(
        verdict(&at((mean * (1.0 + margin) * 1.05) as u64)),
        Verdict::Regressed
    );
    let unknown = BenchResult {
        id: "g/b/unknown".to_string(),
        ..base.clone()
    };
    assert_eq!(
        compare(std::slice::from_ref(&base), std::slice::from_ref(&unknown))[0].verdict,
        Verdict::New
    );
}
