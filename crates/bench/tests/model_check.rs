//! Bounded model-check of the shipped lock-free cores.
//!
//! Each test explores one real core (on the model shim) exhaustively at
//! its small config — CI-sized bounds, well under the 2-minute budget.
//! The planted-bug twins that prove the explorer *can* catch violations
//! live in `futurerd-check`'s own `planted` suite; a schedule that
//! breaks a shipped core here panics with a replayable trace.

use futurerd_bench::checksuite;
use futurerd_check::model::Config;

#[test]
fn chunk_index_exact_claims_two_threads() {
    let stats = checksuite::chunk_index_exact_claims_2t(&Config::exhaustive());
    assert!(
        stats.executions >= 2,
        "expected real branching, got {stats:?}"
    );
}

#[test]
fn chunk_index_exact_claims_three_threads() {
    let stats = checksuite::chunk_index_exact_claims_3t(&Config::exhaustive());
    assert!(
        stats.executions >= 2,
        "expected real branching, got {stats:?}"
    );
}

#[test]
fn chunk_index_drained_stays_drained() {
    checksuite::chunk_index_drained_stays_drained(&Config::exhaustive());
}

#[test]
fn timeline_journal_exact_drop_accounting() {
    checksuite::timeline_journal_exact_drop_accounting(&Config::exhaustive());
}

#[test]
fn metrics_registry_merge_lossless() {
    checksuite::metrics_registry_merge_lossless(&Config::exhaustive());
}

#[test]
fn spin_latch_publishes_result() {
    checksuite::spin_latch_publishes_result(&Config::exhaustive());
}

#[test]
fn count_latch_drains_exactly_once() {
    checksuite::count_latch_drains_exactly_once(&Config::exhaustive());
}

#[test]
fn full_suite_under_preemption_bound() {
    // The nightly job raises the bounds; CI runs the bounded profile to
    // stay inside the time budget. Both must pass.
    for (name, stats) in checksuite::run_all(&Config::bounded(2)) {
        assert!(stats.executions > 0, "{name} explored nothing");
    }
}
