//! Performance-regression harness: re-run the fig benches in smoke mode
//! and compare against a recorded baseline.
//!
//! `futurerd-trace regress --against BENCH_baseline.json` drives this
//! module. A *smoke run* re-measures a representative subset of every
//! baseline bench group's ids with the exact kernels the criterion
//! benches use (same traces, same seeds, same measured routine), but with
//! a handful of one-iteration samples instead of criterion's calibrated
//! sampling — seconds instead of minutes, coarse but comparable. The
//! comparison is noise-aware: each id's tolerance comes from the
//! baseline's own min/max sample spread (never below ±50%, since a smoke
//! sample is noisier than a calibrated one), so one-off scheduler blips
//! do not fail CI while genuine slowdowns (the planted-regression test
//! inflates a run 10×) reliably do. Every run can append one line to the
//! `BENCH_trajectory.jsonl` perf trajectory, which is how the repo's perf
//! history finally accumulates.

use crate::json::Json;
use crate::{bench_params, run_config, Algorithm, Config};
use futurerd_core::parallel::{par_replay_detect, FreezeAssist, IncrementalFreezer, ReachIndex};
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::{record_spec, TraceRecorder};
use futurerd_store::{decode_sidecar, Store};
use futurerd_workloads::fuzzgen::adversarial_kn;
use futurerd_workloads::{run_workload, FutureMode, WorkloadKind};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One measured (or loaded) benchmark id, the same shape the vendored
/// criterion shim appends under `FUTURERD_BENCH_JSON`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Full benchmark id, `group/function/value` (criterion's path form).
    pub id: String,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Number of samples behind the mean.
    pub samples: u32,
    /// Iterations per sample (1 for smoke runs).
    pub iters_per_sample: u32,
}

/// A loaded results document: `BENCH_baseline.json` or a `--out` file.
#[derive(Debug, Clone)]
pub struct ResultsDoc {
    /// All results, in document order.
    pub results: Vec<BenchResult>,
}

/// Loads a results document (the checked-in baseline and `regress --out`
/// files share the shape: a JSON object with a `results` array).
pub fn load_results(path: &str) -> Result<ResultsDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no \"results\" array"))?;
    let mut results = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| {
            row.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: results[{i}] missing numeric \"{name}\""))
        };
        results.push(BenchResult {
            id: row
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: results[{i}] missing \"id\""))?
                .to_string(),
            mean_ns: field("mean_ns")?,
            min_ns: field("min_ns")?,
            max_ns: field("max_ns")?,
            samples: field("samples")? as u32,
            iters_per_sample: field("iters_per_sample")? as u32,
        });
    }
    Ok(ResultsDoc { results })
}

/// Renders results as a baseline-shaped JSON document (what `--out`
/// writes, and what `--against`/`--from` read back).
pub fn format_results_doc(results: &[BenchResult], note: &str) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"note\": \"{note}\",");
    let _ = writeln!(out, "  \"recorded_unix\": {unix},");
    let _ = writeln!(out, "  \"smoke\": true,");
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}, \"iters_per_sample\": {}}}{comma}",
            r.id, r.mean_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// Smoke kernels
// ---------------------------------------------------------------------------

/// The bench groups the smoke runner covers (the baseline's id prefixes).
pub const SMOKE_GROUPS: [&str; 7] = [
    "fig8_basecase_sweep",
    "fig_trace_record_vs_replay",
    "fig_par_detect",
    "fig_store",
    "fig_session",
    "fig_kn_adversarial",
    "fig_freeze_par",
];

/// Maps a `--bench` name onto the baseline id prefix: bench *file* names
/// (`fig8_basecase`, `fig_trace`, as listed in the baseline's `benches`
/// array) resolve to their criterion group names; group names pass
/// through.
pub fn resolve_group(bench: &str) -> &str {
    match bench {
        "fig8_basecase" => "fig8_basecase_sweep",
        "fig_trace" => "fig_trace_record_vs_replay",
        other => other,
    }
}

/// The same large seeded genprog traces `fig_par_detect` / `fig_store` /
/// `fig_session` measure on.
fn big_trace(general: bool, seed: u64) -> Trace {
    let scale = std::env::var("FUTURERD_SCALE")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(1)
        .max(1);
    let cfg = if general {
        GenConfig {
            max_depth: 9 + scale.ilog2(),
            max_actions: 14,
            num_locations: 96 * scale,
            max_accesses: 12,
            general_futures: true,
            w_compute: 10,
            w_get: 2,
            w_create: 2,
            w_spawn: 3,
            w_sync: 1,
        }
    } else {
        GenConfig {
            max_depth: 7 + scale.ilog2(),
            max_actions: 10,
            num_locations: 64 * scale,
            max_accesses: 6,
            ..GenConfig::structured()
        }
    };
    let (trace, _) = record_spec(&generate_program(&cfg, seed));
    trace
}

/// Times `kernel` with `samples` samples (after one calibrating warmup
/// iteration) and folds the per-iteration times into a [`BenchResult`].
/// Sub-50µs kernels get multiple iterations per sample so the smoke
/// numbers measure the kernel, not the timer.
fn measure(id: &str, samples: u32, mut kernel: impl FnMut() -> u64) -> BenchResult {
    let warmup = Instant::now();
    black_box(kernel());
    let warmup_ns = u64::try_from(warmup.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let iters = (50_000 / warmup_ns.max(1)).clamp(1, 200) as u32;
    let samples = samples.max(1);
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(kernel());
        }
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        times.push((ns / u64::from(iters)).max(1));
    }
    let total: u64 = times.iter().sum();
    BenchResult {
        id: id.to_string(),
        mean_ns: (total / u64::from(samples)).max(1),
        min_ns: *times.iter().min().unwrap(),
        max_ns: *times.iter().max().unwrap(),
        samples,
        iters_per_sample: iters,
    }
}

/// Re-measures the smoke subset of one bench group. Each kernel is the
/// measured routine of the corresponding criterion bench (same seeds,
/// same traces); the subset per group is fixed and representative, not
/// exhaustive — [`smoke_results`] logs the coverage.
fn smoke_group(group: &str, samples: u32) -> Vec<BenchResult> {
    let m = |id: String, kernel: &mut dyn FnMut() -> u64| measure(&id, samples, &mut *kernel);
    match group {
        "fig8_basecase_sweep" => {
            let params = bench_params(WorkloadKind::Lcs).with_base(32);
            [
                (Algorithm::MultiBags, "multibags"),
                (Algorithm::MultiBagsPlus, "multibags_plus"),
            ]
            .into_iter()
            .map(|(alg, label)| {
                m(format!("{group}/lcs_B32/{label}"), &mut || {
                    run_config(
                        WorkloadKind::Lcs,
                        FutureMode::Structured,
                        alg,
                        Config::Reachability,
                        &params,
                    )
                    .1
                })
            })
            .collect()
        }
        "fig_trace_record_vs_replay" => {
            let params = bench_params(WorkloadKind::Lcs);
            let record = || {
                let (recorder, _) = run_workload(
                    WorkloadKind::Lcs,
                    FutureMode::Structured,
                    &params,
                    TraceRecorder::new(),
                );
                recorder.into_trace()
            };
            let trace = record();
            vec![
                m(format!("{group}/lcs/record"), &mut || record().len() as u64),
                m(format!("{group}/lcs/replay"), &mut || {
                    replay_detect_unchecked(&trace, ReplayAlgorithm::MultiBags).race_count() as u64
                }),
            ]
        }
        "fig_par_detect" => {
            let trace = big_trace(false, 0xf19);
            let algorithm = ReplayAlgorithm::MultiBags;
            vec![
                m(format!("{group}/multibags/seq"), &mut || {
                    replay_detect_unchecked(&trace, algorithm).race_count() as u64
                }),
                m(format!("{group}/multibags/freeze"), &mut || {
                    ReachIndex::freeze(&trace, algorithm)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets() as u64
                }),
                m(format!("{group}/multibags/par/P2"), &mut || {
                    par_replay_detect(&trace, algorithm, 2)
                        .expect("canonical trace")
                        .race_count() as u64
                }),
            ]
        }
        "fig_store" => {
            let trace = big_trace(false, 0xf19);
            let algorithm = ReplayAlgorithm::MultiBags;
            let dir =
                std::env::temp_dir().join(format!("futurerd-regress-store-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let mut store = Store::open(&dir).expect("store opens");
            store.put_trace("t", &trace).expect("trace stores");
            store.detect("t", algorithm, 1).expect("cold detect");
            let sidecar_bytes =
                std::fs::read(store.sidecar_path("t", algorithm)).expect("sidecar written");
            let results = vec![
                m(format!("{group}/multibags/freeze"), &mut || {
                    let mut fz = IncrementalFreezer::new(algorithm).expect("freezable");
                    fz.extend(trace.events());
                    fz.accesses().len() as u64
                }),
                m(format!("{group}/multibags/warm_load"), &mut || {
                    let sidecar = decode_sidecar(&sidecar_bytes).expect("valid sidecar");
                    let fz = IncrementalFreezer::from_raw(sidecar.freeze).expect("valid state");
                    let index = fz.snapshot_index();
                    fz.accesses().len() as u64 + index.num_attached_sets() as u64
                }),
            ];
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
            results
        }
        "fig_session" => {
            let trace = big_trace(false, 0xf19);
            let config = futurerd::Config::new().algorithm(futurerd::Algorithm::MultiBags);
            let chunks = 8usize;
            let chunk_len = trace.len().div_ceil(chunks);
            vec![
                m(format!("{group}/multibags/one_shot"), &mut || {
                    config.replay(&trace).expect("canonical").race_count() as u64
                }),
                m(
                    format!("{group}/multibags/session_follow_{chunks}"),
                    &mut || {
                        let mut session = config.session();
                        let mut races = 0;
                        for chunk in trace.events().chunks(chunk_len) {
                            session.ingest(chunk).expect("canonical prefix");
                            races = session.report().expect("prefix reports").race_count();
                        }
                        races as u64
                    },
                ),
            ]
        }
        "fig_kn_adversarial" => {
            let program = adversarial_kn(64, 0xbead);
            let (trace, _) = record_spec(&program.spec);
            vec![
                m(format!("{group}/n64/multibags"), &mut || {
                    replay_detect_unchecked(&trace, ReplayAlgorithm::MultiBags).race_count() as u64
                }),
                m(format!("{group}/n64/multibags_plus"), &mut || {
                    replay_detect_unchecked(&trace, ReplayAlgorithm::MultiBagsPlus).race_count()
                        as u64
                }),
                m(format!("{group}/n64/freeze_seq"), &mut || {
                    ReachIndex::freeze(&trace, ReplayAlgorithm::MultiBagsPlus)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets() as u64
                }),
            ]
        }
        "fig_freeze_par" => {
            let scale = std::env::var("FUTURERD_SCALE")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(1)
                .max(1);
            let n = 64 * scale;
            let program = adversarial_kn(n, 0xfeed);
            let (trace, _) = record_spec(&program.spec);
            let algorithm = ReplayAlgorithm::MultiBagsPlus;
            let pool = futurerd::ThreadPool::shared(2);
            vec![
                m(format!("{group}/n{n}/seq"), &mut || {
                    ReachIndex::freeze(&trace, algorithm)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets() as u64
                }),
                m(format!("{group}/n{n}/assist/P2"), &mut || {
                    let executor = futurerd::PoolExecutor(&pool);
                    let assist = FreezeAssist::new(2, &executor);
                    ReachIndex::freeze_assisted(&trace, algorithm, &assist)
                        .expect("canonical trace")
                        .expect("freezable algorithm")
                        .num_attached_sets() as u64
                }),
            ]
        }
        _ => Vec::new(),
    }
}

/// Runs the smoke subset of every group (or just `filter`'s group) and
/// returns the measured results. `log` receives one coverage line per
/// group so partial coverage is visible, never silent.
pub fn smoke_results(
    filter: Option<&str>,
    samples: u32,
    mut log: impl FnMut(&str),
) -> Vec<BenchResult> {
    let wanted = filter.map(resolve_group);
    let mut results = Vec::new();
    for group in SMOKE_GROUPS {
        if wanted.is_some_and(|w| w != group) {
            continue;
        }
        let start = Instant::now();
        let rows = smoke_group(group, samples);
        log(&format!(
            "{group}: {} smoke id(s) in {:.2?}",
            rows.len(),
            start.elapsed()
        ));
        results.extend(rows);
    }
    results
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Outcome of comparing one run id against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise margin.
    Ok,
    /// Faster than the margin allows — worth a look, never a failure.
    Improved,
    /// Slower than the noise-aware threshold: a regression.
    Regressed,
    /// The baseline has no entry for this id.
    New,
}

impl Verdict {
    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::New => "new",
        }
    }
}

/// One compared id.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark id.
    pub id: String,
    /// The baseline mean, when the id exists there.
    pub baseline_mean_ns: Option<u64>,
    /// This run's mean.
    pub run_mean_ns: u64,
    /// `run / baseline` (1.0 for [`Verdict::New`]).
    pub ratio: f64,
    /// The relative tolerance the verdict used.
    pub margin: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// The floor on every id's relative tolerance: smoke samples are noisier
/// than the baseline's calibrated ones, so anything under +50% is noise.
pub const MIN_MARGIN: f64 = 0.5;

/// Noise-aware tolerance for one baseline entry: twice the baseline's own
/// relative sample spread `(max - min) / mean`, floored at [`MIN_MARGIN`].
pub fn noise_margin(base: &BenchResult) -> f64 {
    let mean = base.mean_ns.max(1) as f64;
    let spread = base.max_ns.saturating_sub(base.min_ns) as f64 / mean;
    (2.0 * spread).max(MIN_MARGIN)
}

/// Compares a run against the baseline, id by id. Baseline ids the run
/// did not measure are simply not compared (the smoke subset is partial
/// by design); run ids absent from the baseline come back as `New`.
pub fn compare(baseline: &[BenchResult], run: &[BenchResult]) -> Vec<Comparison> {
    run.iter()
        .map(|r| {
            let base = baseline.iter().find(|b| b.id == r.id);
            match base {
                Some(base) => {
                    let margin = noise_margin(base);
                    let ratio = r.mean_ns as f64 / base.mean_ns.max(1) as f64;
                    let verdict = if ratio > 1.0 + margin {
                        Verdict::Regressed
                    } else if ratio < 1.0 / (1.0 + margin) {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    };
                    Comparison {
                        id: r.id.clone(),
                        baseline_mean_ns: Some(base.mean_ns),
                        run_mean_ns: r.mean_ns,
                        ratio,
                        margin,
                        verdict,
                    }
                }
                None => Comparison {
                    id: r.id.clone(),
                    baseline_mean_ns: None,
                    run_mean_ns: r.mean_ns,
                    ratio: 1.0,
                    margin: 0.0,
                    verdict: Verdict::New,
                },
            }
        })
        .collect()
}

/// Renders the comparison as an aligned table plus a one-line summary.
pub fn format_comparison(comparisons: &[Comparison]) -> String {
    let mut out = String::new();
    let id_w = comparisons
        .iter()
        .map(|c| c.id.len())
        .chain(["id".len()])
        .max()
        .unwrap();
    let _ = writeln!(
        out,
        "{:<id_w$}  {:>12}  {:>12}  {:>7}  {:>7}  verdict",
        "id", "baseline", "run", "ratio", "margin"
    );
    for c in comparisons {
        let base = c
            .baseline_mean_ns
            .map(futurerd_obs::fmt_duration_ns)
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<id_w$}  {:>12}  {:>12}  {:>6.2}x  {:>6.0}%  {}",
            c.id,
            base,
            futurerd_obs::fmt_duration_ns(c.run_mean_ns),
            c.ratio,
            c.margin * 100.0,
            c.verdict.label(),
        );
    }
    let count = |v: Verdict| comparisons.iter().filter(|c| c.verdict == v).count();
    let worst = comparisons
        .iter()
        .filter(|c| c.baseline_mean_ns.is_some())
        .map(|c| c.ratio)
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "regress: {} id(s) compared — {} ok, {} improved, {} new, {} regressed (worst ratio {:.2}x)",
        comparisons.len(),
        count(Verdict::Ok),
        count(Verdict::Improved),
        count(Verdict::New),
        count(Verdict::Regressed),
        worst,
    );
    out
}

/// Formats one perf-trajectory JSONL entry for this comparison.
pub fn trajectory_entry(against: &str, source: &str, comparisons: &[Comparison]) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let count = |v: Verdict| comparisons.iter().filter(|c| c.verdict == v).count();
    let worst = comparisons
        .iter()
        .filter(|c| c.baseline_mean_ns.is_some())
        .map(|c| c.ratio)
        .fold(0.0f64, f64::max);
    format!(
        "{{\"unix\":{unix},\"against\":\"{against}\",\"source\":\"{source}\",\"ids\":{},\"ok\":{},\"improved\":{},\"new\":{},\"regressed\":{},\"worst_ratio\":{worst:.4}}}\n",
        comparisons.len(),
        count(Verdict::Ok),
        count(Verdict::Improved),
        count(Verdict::New),
        count(Verdict::Regressed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, mean: u64, min: u64, max: u64) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: 5,
            iters_per_sample: 1,
        }
    }

    #[test]
    fn margin_floors_at_fifty_percent() {
        // Tight baseline spread: the floor applies.
        assert_eq!(noise_margin(&result("a", 1000, 990, 1010)), MIN_MARGIN);
        // Wide spread: 2 * (1500-500)/1000 = 2.0.
        assert!((noise_margin(&result("a", 1000, 500, 1500)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_runs_compare_clean() {
        let base = vec![
            result("g/a", 1000, 900, 1100),
            result("g/b", 5000, 4000, 6000),
        ];
        let comparisons = compare(&base, &base);
        assert!(comparisons.iter().all(|c| c.verdict == Verdict::Ok));
    }

    #[test]
    fn planted_regression_is_flagged_and_new_ids_pass() {
        let base = vec![result("g/a", 1000, 900, 1100)];
        let run = vec![result("g/a", 10_000, 9000, 11_000), result("g/c", 7, 6, 8)];
        let comparisons = compare(&base, &run);
        assert_eq!(comparisons[0].verdict, Verdict::Regressed);
        assert_eq!(comparisons[1].verdict, Verdict::New);
        let report = format_comparison(&comparisons);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("1 regressed"));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = vec![result("g/a", 10_000, 9000, 11_000)];
        let run = vec![result("g/a", 1000, 900, 1100)];
        assert_eq!(compare(&base, &run)[0].verdict, Verdict::Improved);
    }

    #[test]
    fn results_doc_round_trips_through_the_parser() {
        let rows = vec![result("g/a/x", 1000, 900, 1100), result("g/b/y", 5, 4, 6)];
        let doc = format_results_doc(&rows, "test doc");
        let dir = std::env::temp_dir().join(format!("futurerd-regress-doc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        std::fs::write(&path, doc).unwrap();
        let loaded = load_results(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.results, rows);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_aliases_resolve() {
        assert_eq!(resolve_group("fig8_basecase"), "fig8_basecase_sweep");
        assert_eq!(resolve_group("fig_trace"), "fig_trace_record_vs_replay");
        assert_eq!(resolve_group("fig_session"), "fig_session");
    }

    #[test]
    fn trajectory_entry_is_one_json_line() {
        let base = vec![result("g/a", 1000, 900, 1100)];
        let entry = trajectory_entry("BENCH_baseline.json", "smoke", &compare(&base, &base));
        assert!(entry.ends_with('\n'));
        let parsed = Json::parse(entry.trim()).unwrap();
        assert_eq!(parsed.get("ids").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("regressed").unwrap().as_u64(), Some(0));
        assert_eq!(parsed.get("source").unwrap().as_str(), Some("smoke"));
    }
}
