//! Benchmark harness for reproducing the tables and figures of
//! *Efficient Race Detection with Futures* (PPoPP 2019), Section 6.
//!
//! The paper evaluates FutureRD with four configurations per benchmark
//! (baseline / reachability / instrumentation / full), once for structured
//! futures with MultiBags (Figure 6), once for general futures with
//! MultiBags+ (Figure 7), and then compares the two reachability structures
//! on structured programs while shrinking the base case (Figure 8).
//!
//! Two front ends regenerate those results:
//!
//! * `cargo run --release -p futurerd-bench --bin tables -- all` prints the
//!   paper-style tables (times, per-row overheads, geometric means);
//! * `cargo bench` runs the same configurations under Criterion
//!   (`fig6_structured`, `fig7_general`, `fig8_basecase`, `fig_scaling`).
//!
//! Absolute times are not comparable to the paper (different host, different
//! substrate: library-level instrumentation instead of compiler
//! instrumentation, scaled-down inputs); the *shape* — which configuration
//! costs what, and how MultiBags+ degrades as the number of `get_fut`s grows
//! — is what the harness reproduces. Input sizes can be scaled with the
//! `FUTURERD_SCALE` environment variable (1 = defaults, 2 = 2× larger
//! problem sizes, ...).
//!
//! ## Quick start
//!
//! Time one (workload, mode, algorithm, configuration) cell directly:
//!
//! ```
//! use futurerd_bench::{run_config, Algorithm, Config};
//! use futurerd_workloads::{FutureMode, WorkloadKind, WorkloadParams};
//!
//! let params = WorkloadParams::tiny();
//! let (time, checksum, stats) = run_config(
//!     WorkloadKind::Lcs,
//!     FutureMode::Structured,
//!     Algorithm::MultiBags,
//!     Config::Full,
//!     &params,
//! );
//! assert!(time.as_nanos() > 0 && checksum != 0);
//! assert!(stats.unwrap().queries > 0); // full detection queried reachability
//! ```

#![warn(missing_docs)]

pub mod checksuite;
pub mod json;
pub mod regress;

use futurerd_core::detector::{InstrumentationOnly, RaceDetector, ReachabilityOnly};
use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
use futurerd_core::ReachStats;
use futurerd_dag::NullObserver;
use futurerd_workloads::{run_workload, FutureMode, WorkloadKind, WorkloadParams};
use std::time::{Duration, Instant};

/// The four measurement configurations of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Run without any detection state.
    Baseline,
    /// Maintain the reachability structure only.
    Reachability,
    /// Reachability + memory-access instrumentation (no access history).
    Instrumentation,
    /// Full race detection.
    Full,
}

impl Config {
    /// All configurations in table order.
    pub const ALL: [Config; 4] = [
        Config::Baseline,
        Config::Reachability,
        Config::Instrumentation,
        Config::Full,
    ];

    /// Column label used in the tables.
    pub fn label(self) -> &'static str {
        match self {
            Config::Baseline => "baseline",
            Config::Reachability => "reachability",
            Config::Instrumentation => "instr",
            Config::Full => "full",
        }
    }
}

/// Which reachability algorithm drives the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// MultiBags (structured futures).
    MultiBags,
    /// MultiBags+ (general futures).
    MultiBagsPlus,
}

impl Algorithm {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::MultiBags => "MultiBags",
            Algorithm::MultiBagsPlus => "MultiBags+",
        }
    }
}

/// Benchmark-input sizes used for the tables. These are scaled-down versions
/// of the paper's inputs so a full table regenerates in seconds rather than
/// hours; scale them with `FUTURERD_SCALE`.
pub fn bench_params(kind: WorkloadKind) -> WorkloadParams {
    let scale = std::env::var("FUTURERD_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let base = WorkloadParams::default();
    match kind {
        // Paper: N = 16k, B = sqrt(N).
        WorkloadKind::Lcs => WorkloadParams {
            n: 256 * scale,
            base: 16 * scale,
            ..base
        },
        // Paper: N = 2048, B = sqrt(N); Θ(n³) work keeps n modest here.
        WorkloadKind::Sw => WorkloadParams {
            n: 64 * scale,
            base: 8 * scale,
            ..base
        },
        // Paper: N = 2048, B = sqrt(N).
        WorkloadKind::Mm => WorkloadParams {
            n: 48 * scale,
            base: 8 * scale,
            ..base
        },
        // Paper: trees of 8e6 / 4e6 nodes.
        WorkloadKind::Bst => WorkloadParams {
            bst_sizes: (6000 * scale, 3000 * scale),
            base: 64,
            ..base
        },
        // Paper: 10 ultrasound frames.
        WorkloadKind::Heartwall => WorkloadParams {
            heartwall: (10, 16 * scale, 64),
            ..base
        },
        // Paper: PARSEC input "large".
        WorkloadKind::Dedup => WorkloadParams {
            dedup: (96 * scale, 256),
            ..base
        },
    }
}

/// Times one run of a workload under the given configuration. Returns the
/// wall-clock time, the result checksum and (when a reachability structure
/// was involved) its work statistics.
pub fn run_config(
    kind: WorkloadKind,
    mode: FutureMode,
    algorithm: Algorithm,
    config: Config,
    params: &WorkloadParams,
) -> (Duration, u64, Option<ReachStats>) {
    let start = Instant::now();
    match (config, algorithm) {
        (Config::Baseline, _) => {
            let (_, result) = run_workload(kind, mode, params, NullObserver);
            (start.elapsed(), result.checksum, None)
        }
        (Config::Reachability, Algorithm::MultiBags) => {
            let (obs, result) = run_workload(
                kind,
                mode,
                params,
                ReachabilityOnly::<MultiBags>::structured(),
            );
            (start.elapsed(), result.checksum, Some(obs.stats()))
        }
        (Config::Reachability, Algorithm::MultiBagsPlus) => {
            let (obs, result) = run_workload(
                kind,
                mode,
                params,
                ReachabilityOnly::<MultiBagsPlus>::general(),
            );
            (start.elapsed(), result.checksum, Some(obs.stats()))
        }
        (Config::Instrumentation, Algorithm::MultiBags) => {
            let (obs, result) = run_workload(
                kind,
                mode,
                params,
                InstrumentationOnly::<MultiBags>::structured(),
            );
            (start.elapsed(), result.checksum, Some(obs.stats()))
        }
        (Config::Instrumentation, Algorithm::MultiBagsPlus) => {
            let (obs, result) = run_workload(
                kind,
                mode,
                params,
                InstrumentationOnly::<MultiBagsPlus>::general(),
            );
            (start.elapsed(), result.checksum, Some(obs.stats()))
        }
        (Config::Full, Algorithm::MultiBags) => {
            let (obs, result) =
                run_workload(kind, mode, params, RaceDetector::<MultiBags>::structured());
            assert!(
                obs.report().is_race_free(),
                "{kind} {mode}: unexpected race: {}",
                obs.report()
            );
            (start.elapsed(), result.checksum, Some(obs.reach_stats()))
        }
        (Config::Full, Algorithm::MultiBagsPlus) => {
            let (obs, result) =
                run_workload(kind, mode, params, RaceDetector::<MultiBagsPlus>::general());
            assert!(
                obs.report().is_race_free(),
                "{kind} {mode}: unexpected race: {}",
                obs.report()
            );
            (start.elapsed(), result.checksum, Some(obs.reach_stats()))
        }
    }
}

/// Times a run, repeating it enough times to smooth out timer noise for very
/// short configurations, and returns the mean duration.
pub fn run_config_timed(
    kind: WorkloadKind,
    mode: FutureMode,
    algorithm: Algorithm,
    config: Config,
    params: &WorkloadParams,
    repeats: u32,
) -> Duration {
    let repeats = repeats.max(1);
    let mut total = Duration::ZERO;
    for _ in 0..repeats {
        let (t, _, _) = run_config(kind, mode, algorithm, config, params);
        total += t;
    }
    total / repeats
}

/// One row of a Figure 6 / Figure 7 style table.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Time per configuration, in table order.
    pub times: [Duration; 4],
}

impl OverheadRow {
    /// Overhead of configuration `i` relative to the baseline.
    pub fn overhead(&self, i: usize) -> f64 {
        self.times[i].as_secs_f64() / self.times[0].as_secs_f64().max(1e-12)
    }
}

/// Geometric mean of a sequence of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut product = 1.0f64;
    let mut count = 0usize;
    for v in values {
        product *= v;
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        product.powf(1.0 / count as f64)
    }
}

/// Builds the rows of Figure 6 (structured futures, MultiBags) or Figure 7
/// (general futures, MultiBags+), depending on `mode`/`algorithm`.
pub fn overhead_table(mode: FutureMode, algorithm: Algorithm, repeats: u32) -> Vec<OverheadRow> {
    WorkloadKind::ALL
        .iter()
        .map(|&kind| {
            let params = bench_params(kind);
            let times = [
                run_config_timed(kind, mode, algorithm, Config::Baseline, &params, repeats),
                run_config_timed(
                    kind,
                    mode,
                    algorithm,
                    Config::Reachability,
                    &params,
                    repeats,
                ),
                run_config_timed(
                    kind,
                    mode,
                    algorithm,
                    Config::Instrumentation,
                    &params,
                    repeats,
                ),
                run_config_timed(kind, mode, algorithm, Config::Full, &params, repeats),
            ];
            OverheadRow {
                bench: kind.name(),
                times,
            }
        })
        .collect()
}

/// Formats a Figure 6/7 style table as text.
pub fn format_overhead_table(title: &str, rows: &[OverheadRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>20} {:>20} {:>20}",
        "bench", "baseline", "reachability", "instr", "full"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>10.2}ms {:>13.2}ms ({:>4.2}x) {:>13.2}ms ({:>4.2}x) {:>13.2}ms ({:>5.2}x)",
            row.bench,
            row.times[0].as_secs_f64() * 1e3,
            row.times[1].as_secs_f64() * 1e3,
            row.overhead(1),
            row.times[2].as_secs_f64() * 1e3,
            row.overhead(2),
            row.times[3].as_secs_f64() * 1e3,
            row.overhead(3),
        );
    }
    let reach_gm = geomean(rows.iter().map(|r| r.overhead(1)));
    let full_gm = geomean(rows.iter().map(|r| r.overhead(3)));
    let _ = writeln!(
        out,
        "geomean overhead: reachability {reach_gm:.2}x, full {full_gm:.2}x"
    );
    out
}

/// One row of the Figure 8 table (base-case sweep on structured programs).
#[derive(Debug, Clone)]
pub struct BaseCaseRow {
    /// Benchmark and base-case label, e.g. `lcs (B=32)`.
    pub label: String,
    /// Baseline time.
    pub baseline: Duration,
    /// MultiBags reachability-only time.
    pub multibags: Duration,
    /// MultiBags+ reachability-only time.
    pub multibags_plus: Duration,
    /// Number of `get_fut` operations (`k`).
    pub gets: u64,
    /// Bytes used by MultiBags+'s reachability matrix `R`.
    pub r_bytes: u64,
}

/// Builds the Figure 8 sweep: lcs / sw / mm with shrinking base cases, all
/// three configurations in the *reachability* configuration, structured
/// futures (MultiBags+ pays its k² price even though the program is
/// structured — exactly the effect Figure 8 isolates).
pub fn base_case_table(repeats: u32) -> Vec<BaseCaseRow> {
    let sweep: [(WorkloadKind, &[usize]); 3] = [
        (WorkloadKind::Lcs, &[32, 16, 8]),
        (WorkloadKind::Sw, &[16, 8]),
        (WorkloadKind::Mm, &[16, 8, 4]),
    ];
    let mut rows = Vec::new();
    for (kind, bases) in sweep {
        for &b in bases {
            let params = bench_params(kind).with_base(b);
            let baseline = run_config_timed(
                kind,
                FutureMode::Structured,
                Algorithm::MultiBags,
                Config::Baseline,
                &params,
                repeats,
            );
            let multibags = run_config_timed(
                kind,
                FutureMode::Structured,
                Algorithm::MultiBags,
                Config::Reachability,
                &params,
                repeats,
            );
            let (mbp_time, _, stats) = {
                let mut best = Duration::MAX;
                let mut stats = None;
                for _ in 0..repeats.max(1) {
                    let (t, c, s) = run_config(
                        kind,
                        FutureMode::Structured,
                        Algorithm::MultiBagsPlus,
                        Config::Reachability,
                        &params,
                    );
                    if t < best {
                        best = t;
                        stats = s;
                    }
                    let _ = c;
                }
                (best, 0u64, stats)
            };
            let (gets, r_bytes) = {
                let (_, result) = run_workload(
                    kind,
                    FutureMode::Structured,
                    &params,
                    futurerd_dag::NullObserver,
                );
                (
                    result.summary.gets,
                    stats.map(|s| s.r_bytes).unwrap_or_default(),
                )
            };
            rows.push(BaseCaseRow {
                label: format!("{} (B={})", kind.name(), b),
                baseline,
                multibags,
                multibags_plus: mbp_time,
                gets,
                r_bytes,
            });
        }
    }
    rows
}

/// Formats the Figure 8 table.
pub fn format_base_case_table(rows: &[BaseCaseRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: reachability maintenance, MultiBags vs MultiBags+ (structured programs, shrinking base case)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>20} {:>20} {:>10} {:>12}",
        "bench", "baseline", "MultiBags", "MultiBags+", "k (gets)", "R bytes"
    );
    for r in rows {
        let base = r.baseline.as_secs_f64().max(1e-12);
        let _ = writeln!(
            out,
            "{:<14} {:>10.2}ms {:>13.2}ms ({:>4.2}x) {:>13.2}ms ({:>4.2}x) {:>10} {:>12}",
            r.label,
            r.baseline.as_secs_f64() * 1e3,
            r.multibags.as_secs_f64() * 1e3,
            r.multibags.as_secs_f64() / base,
            r.multibags_plus.as_secs_f64() * 1e3,
            r.multibags_plus.as_secs_f64() / base,
            r.gets,
            r.r_bytes,
        );
    }
    out
}

/// One row of the complexity-scaling ablation (Theorems 4.1 / 5.1): how the
/// number of disjoint-set operations and attached sets grows with the input.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Description of the measured point.
    pub label: String,
    /// Memory accesses performed.
    pub accesses: u64,
    /// `get_fut` operations (`k`).
    pub gets: u64,
    /// Disjoint-set operations performed by the reachability structure.
    pub dsu_ops: u64,
    /// Attached sets created (MultiBags+ only, 0 for MultiBags).
    pub attached_sets: u64,
}

/// Measures the operation counts backing the complexity claims, for a sweep
/// of lcs sizes under both algorithms (full detection).
pub fn scaling_table() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in &[64usize, 128, 256] {
        for (alg, mode) in [
            (Algorithm::MultiBags, FutureMode::Structured),
            (Algorithm::MultiBagsPlus, FutureMode::General),
        ] {
            let params = bench_params(WorkloadKind::Lcs).with_n(n).with_base(16);
            let (obs_stats, summary) = match alg {
                Algorithm::MultiBags => {
                    let (obs, result) = run_workload(
                        WorkloadKind::Lcs,
                        mode,
                        &params,
                        RaceDetector::<MultiBags>::structured(),
                    );
                    (obs.reach_stats(), result.summary)
                }
                Algorithm::MultiBagsPlus => {
                    let (obs, result) = run_workload(
                        WorkloadKind::Lcs,
                        mode,
                        &params,
                        RaceDetector::<MultiBagsPlus>::general(),
                    );
                    (obs.reach_stats(), result.summary)
                }
            };
            rows.push(ScalingRow {
                label: format!("lcs n={n} {}", alg.label()),
                accesses: summary.accesses(),
                gets: summary.gets,
                dsu_ops: obs_stats.dsu_ops(),
                attached_sets: obs_stats.attached_sets,
            });
        }
    }
    rows
}

/// Formats the scaling ablation.
pub fn format_scaling_table(rows: &[ScalingRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Complexity ablation (Theorems 4.1 / 5.1): operation counts vs input size"
    );
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>10} {:>12} {:>14} {:>16}",
        "point", "accesses", "k (gets)", "dsu ops", "attached sets", "dsu ops/access"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>10} {:>12} {:>14} {:>16.3}",
            r.label,
            r.accesses,
            r.gets,
            r.dsu_ops,
            r.attached_sets,
            r.dsu_ops as f64 / r.accesses.max(1) as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(std::iter::empty::<f64>()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_config_checksums_match_across_configurations() {
        let kind = WorkloadKind::Lcs;
        let params = WorkloadParams::tiny();
        let mut checksums = Vec::new();
        for config in Config::ALL {
            let (_, checksum, _) = run_config(
                kind,
                FutureMode::Structured,
                Algorithm::MultiBags,
                config,
                &params,
            );
            checksums.push(checksum);
        }
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn full_config_reports_reach_stats() {
        let params = WorkloadParams::tiny();
        let (_, _, stats) = run_config(
            WorkloadKind::Dedup,
            FutureMode::General,
            Algorithm::MultiBagsPlus,
            Config::Full,
            &params,
        );
        let stats = stats.expect("full config must expose reachability stats");
        assert!(stats.queries > 0);
        assert!(stats.attached_sets > 0);
    }

    #[test]
    fn table_formatting_includes_every_benchmark() {
        // Use tiny parameters through the public API by formatting a table
        // built from synthetic rows (formatting only; no timing).
        let rows: Vec<OverheadRow> = WorkloadKind::ALL
            .iter()
            .map(|k| OverheadRow {
                bench: k.name(),
                times: [
                    Duration::from_millis(10),
                    Duration::from_millis(11),
                    Duration::from_millis(30),
                    Duration::from_millis(200),
                ],
            })
            .collect();
        let text = format_overhead_table("Figure 6", &rows);
        for k in WorkloadKind::ALL {
            assert!(text.contains(k.name()));
        }
        assert!(text.contains("geomean"));
    }

    #[test]
    fn config_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Config::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
