//! Regenerates the evaluation tables of the paper.
//!
//! ```text
//! cargo run --release -p futurerd-bench --bin tables -- all
//! cargo run --release -p futurerd-bench --bin tables -- fig6
//! cargo run --release -p futurerd-bench --bin tables -- fig7
//! cargo run --release -p futurerd-bench --bin tables -- fig8
//! cargo run --release -p futurerd-bench --bin tables -- geomean
//! cargo run --release -p futurerd-bench --bin tables -- scaling
//! ```
//!
//! Set `FUTURERD_REPEATS` (default 3) to average more runs per cell and
//! `FUTURERD_SCALE` to enlarge the inputs.

use futurerd_bench::{
    base_case_table, format_base_case_table, format_overhead_table, format_scaling_table, geomean,
    overhead_table, scaling_table, Algorithm,
};
use futurerd_workloads::FutureMode;

fn repeats() -> u32 {
    std::env::var("FUTURERD_REPEATS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn fig6() {
    let rows = overhead_table(FutureMode::Structured, Algorithm::MultiBags, repeats());
    println!(
        "{}",
        format_overhead_table(
            "Figure 6: structured futures, MultiBags race detection (times and overhead vs baseline)",
            &rows
        )
    );
}

fn fig7() {
    let rows = overhead_table(FutureMode::General, Algorithm::MultiBagsPlus, repeats());
    println!(
        "{}",
        format_overhead_table(
            "Figure 7: general futures, MultiBags+ race detection (times and overhead vs baseline)",
            &rows
        )
    );
}

fn fig8() {
    let rows = base_case_table(repeats());
    println!("{}", format_base_case_table(&rows));
}

fn geomeans() {
    let s = overhead_table(FutureMode::Structured, Algorithm::MultiBags, repeats());
    let g = overhead_table(FutureMode::General, Algorithm::MultiBagsPlus, repeats());
    println!("Section 6 headline geometric means (paper: 1.06x / 1.40x reachability, 20.48x / 25.98x full)");
    println!(
        "  structured + MultiBags : reachability {:.2}x, full {:.2}x",
        geomean(s.iter().map(|r| r.overhead(1))),
        geomean(s.iter().map(|r| r.overhead(3))),
    );
    println!(
        "  general + MultiBags+   : reachability {:.2}x, full {:.2}x",
        geomean(g.iter().map(|r| r.overhead(1))),
        geomean(g.iter().map(|r| r.overhead(3))),
    );
}

fn scaling() {
    println!("{}", format_scaling_table(&scaling_table()));
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "geomean" => geomeans(),
        "scaling" => scaling(),
        "all" => {
            fig6();
            fig7();
            fig8();
            scaling();
            geomeans();
        }
        other => {
            eprintln!("unknown table '{other}'; expected fig6|fig7|fig8|geomean|scaling|all");
            std::process::exit(2);
        }
    }
}
