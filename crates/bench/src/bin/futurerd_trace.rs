//! `futurerd-trace` — record, replay and differentially check execution
//! traces of the benchmark workloads.
//!
//! ```text
//! # Record a workload's execution into a trace file:
//! cargo run --release -p futurerd-bench --bin futurerd-trace -- \
//!     record --workload lcs --mode structured --out lcs.trace
//!
//! # Replay a trace file through one or all detectors (no re-execution):
//! cargo run --release -p futurerd-bench --bin futurerd-trace -- \
//!     replay --input lcs.trace --algorithm all
//!
//! # Record + replay + cross-check against in-process detection:
//! cargo run --release -p futurerd-bench --bin futurerd-trace -- \
//!     diff --workload bst --mode general
//!
//! # Differentially fuzz the whole detector matrix on generated programs:
//! cargo run --release -p futurerd-bench --bin futurerd-trace -- \
//!     fuzz --seeds 500
//! ```
//!
//! `diff` exits non-zero if any replayed verdict differs from the verdict of
//! running the same detector in-process, or if any sound algorithm
//! disagrees with the ground-truth oracle. SP-Bags aborts on futures by
//! design, so for the futures-based workloads it is reported as
//! not-runnable (identically in-process and on replay) rather than run.
//!
//! `fuzz` generates seeded racy programs (see `futurerd_workloads::fuzzgen`)
//! and runs every detector through every serving path — sequential replay,
//! the sharded parallel engine, streaming sessions under random chunkings,
//! and persistent-store round-trips — against the ground-truth oracle. Every
//! divergence is classified: known approximations (the fork-join baseline on
//! futures, MultiBags on multi-touch traces) are quantified, anything else
//! is a real bug and the command exits non-zero.

use futurerd_core::detector::RaceDetector;
use futurerd_core::parallel::par_replay_detect;
use futurerd_core::reachability::{
    GraphOracle, MultiBags, MultiBagsPlus, SpBags, SpBagsConservative,
};
use futurerd_core::replay::{replay_detect_unchecked, ApproximationError, ReplayAlgorithm};
use futurerd_core::RaceReport;
use futurerd_dag::trace::{Trace, TRACE_VERSION, TRACE_VERSION_V1, TRACE_VERSION_V2};
use futurerd_fuzz::{run_fuzz, FuzzOptions};
use futurerd_runtime::trace::TraceRecorder;
use futurerd_store::{BatchJob, Store};
use futurerd_workloads::{lcs, run_workload, FutureMode, WorkloadKind, WorkloadParams};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: futurerd-trace <record|replay|diff|batch|follow|fuzz|profile|regress|lint|check> [options]\n\
         \n\
         record --workload <{names}> --mode <structured|general> --out <path>\n\
        \x20       [--size <tiny|default>] [--seed <u64>] [--racy]\n\
         replay --input <path> [--algorithm <multibags|multibags+|spbags|spbags-cons|oracle|all>]\n\
        \x20       [--threads <n>] [--metrics[=text|json|prom]] [--metrics-out <path>]\n\
        \x20       [--trace-out <path>] [--timeline]\n\
         diff   --workload <name> --mode <mode> [--size <tiny|default>] [--seed <u64>] [--racy]\n\
         batch  <dir> [--algorithm <multibags|multibags+|all>] [--threads <n>]\n\
        \x20       [--metrics[=text|json|prom]] [--metrics-out <path>] [--trace-out <path>]\n\
         follow --workload <name> --mode <mode> [--algorithm <multibags|multibags+>]\n\
        \x20       [--threads <n>] [--chunks <n>] [--store <dir>] [--size ...] [--seed ...] [--racy]\n\
        \x20       [--metrics[=text|json|prom]] [--metrics-out <path>] [--trace-out <path>]\n\
         fuzz   [--seeds <n>] [--minutes <m>] [--emit-corpus <dir> [--per-shape <n>]]\n\
        \x20       [--metrics[=text|json|prom]] [--metrics-out <path>]\n\
         profile <trace> [--algorithm <multibags|multibags+>] [--threads <n>] [--json]\n\
        \x20       [--trace-out <path>]\n\
         regress --against <baseline.json> [--bench <name>] [--out <run.json>]\n\
        \x20       [--from <run.json>] [--samples <n>] [--inflate <factor>]\n\
        \x20       [--trajectory <path>] [--no-trajectory]\n\
         lint   [--root <workspace>] [--self-test]\n\
         check  [--preemptions <n>] [--max-executions <n>] [--skip-planted]\n\
         \n\
         --racy uses the workload's seeded-race variant (lcs only): the\n\
         recorded trace then carries a real determinacy race to detect.\n\
         --threads runs detection through the sharded parallel engine\n\
         (MultiBags / MultiBags+; the report is identical at any thread\n\
         count). Pass 1 joins in: idle workers assist the freeze's\n\
         closure stamping, leaving a byte-identical frozen index.\n\
         batch treats <dir> as a futurerd-store detection store: every\n\
         *.trace in it is queued against the selected freezable algorithms\n\
         and served warm from its FRDIDX sidecar when one is valid; the\n\
         deterministic result manifest is printed and written to\n\
         <dir>/batch-manifest.txt.\n\
         follow simulates a growing execution: the workload's event stream\n\
         is fed to one long-lived detection session in --chunks appends\n\
         (default 8), re-detecting after each — the first report freezes\n\
         cold, every later one is incremental (only partitions the appended\n\
         suffix touched re-run). With --store the session is persistent:\n\
         state resumes from and refreshes the trace's FRDIDX sidecar. The\n\
         final verdict is cross-checked against one-shot replay.\n\
         fuzz differentially checks every detector × serving path on seeded\n\
         generated programs (default 100 seeds; --minutes caps wall-clock).\n\
         Divergences are classified; any real bug makes the exit non-zero.\n\
         --emit-corpus shrinks the first racy seeds of every generator shape\n\
         into tests/fixtures-style regression fixtures instead of fuzzing.\n\
         --metrics turns the futurerd-obs span/metric recorder on for the\n\
         run and prints the merged snapshot afterwards — as an aligned text\n\
         table (default), JSON-lines, or a Prometheus exposition. Recording\n\
         never changes verdicts: reports are byte-identical on and off.\n\
         --metrics-out writes that snapshot to a file instead of stdout\n\
         (JSON-lines unless --metrics says otherwise).\n\
         --trace-out additionally records the interval timeline journal and\n\
         writes it as Chrome-trace JSON (chrome://tracing, Perfetto);\n\
         --timeline prints the journal as an aligned text timeline. With\n\
         either flag on, replay routes freezable algorithms through the\n\
         sharded engine even at P=1 so the stages are attributed (the\n\
         report stays byte-identical).\n\
         profile replays <trace> through the sharded engine at P=1 and P=N\n\
         (N from --threads, else FUTURERD_PAR_THREADS, else the machine's\n\
         parallelism) and prints the per-stage time breakdown: validate,\n\
         freeze (with assist dispatch/stamp detail), detect, merge vs wall\n\
         clock. --json emits one machine-readable JSON line per profiled\n\
         thread count instead of the tables.\n\
         lint runs the workspace invariant linter (token-level, no rustc):\n\
         unsafe allowlist + SAFETY comments, obs names against the\n\
         futurerd-obs manifest, Relaxed orderings on policed atomics,\n\
         Instant::now placement. Exit 0 ⇔ clean. --self-test lints the\n\
         fabricated seeded-violation sources and fails unless every rule\n\
         fires (CI's guard against a silently broken linter).\n\
         check explores the shipped lock-free cores (chunk-index claim,\n\
         latches, timeline journal, metrics registry) on the model shim —\n\
         exhaustively at 2–3 threads unless --preemptions bounds the\n\
         context switches. Planted-bug twins run first and must each be\n\
         caught with a replayable schedule (--skip-planted omits them).\n\
         Any invariant-violating schedule prints a replayable trace and\n\
         the exit is non-zero.\n\
         regress re-measures a representative smoke subset of the fig\n\
         benches (same kernels, 1-iteration samples) and compares means\n\
         against --against with noise-aware thresholds derived from the\n\
         baseline's own min/max spread; it appends one line to the\n\
         BENCH_trajectory.jsonl perf trajectory and exits non-zero when\n\
         anything regressed. --from compares a saved --out document\n\
         instead of re-measuring; --inflate <factor> scales the run's\n\
         times (a harness self-test knob, used by CI to plant a known\n\
         regression).",
        names = WorkloadKind::ALL.map(|k| k.name()).join("|")
    );
    std::process::exit(2);
}

fn parse_workload(name: &str) -> WorkloadKind {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}'");
            usage()
        })
}

fn parse_mode(name: &str) -> FutureMode {
    match name {
        "structured" => FutureMode::Structured,
        "general" => FutureMode::General,
        other => {
            eprintln!("unknown mode '{other}'");
            usage()
        }
    }
}

/// Export format selected by `--metrics[=text|json|prom]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Text,
    Json,
    Prom,
}

fn parse_metrics_format(name: &str) -> MetricsFormat {
    match name {
        "text" => MetricsFormat::Text,
        "json" => MetricsFormat::Json,
        "prom" => MetricsFormat::Prom,
        other => {
            eprintln!("unknown metrics format '{other}' (expected text, json or prom)");
            usage()
        }
    }
}

/// Renders the current `futurerd-obs` snapshot in the selected format.
fn render_metrics(format: MetricsFormat) -> String {
    let snapshot = futurerd_obs::snapshot();
    match format {
        MetricsFormat::Text => futurerd_obs::export_text(&snapshot),
        MetricsFormat::Json => futurerd_obs::export_json_lines(&snapshot),
        MetricsFormat::Prom => futurerd_obs::export_prometheus(&snapshot),
    }
}

#[derive(Debug)]
struct Options {
    workload: Option<WorkloadKind>,
    mode: FutureMode,
    out: Option<String>,
    input: Option<String>,
    algorithm: Option<String>,
    params: WorkloadParams,
    racy: bool,
    threads: usize,
    chunks: usize,
    store: Option<String>,
    metrics: Option<MetricsFormat>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    timeline: bool,
    json: bool,
    seeds: u64,
    minutes: Option<u64>,
    emit_corpus: Option<String>,
    per_shape: usize,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        workload: None,
        mode: FutureMode::Structured,
        out: None,
        input: None,
        algorithm: None,
        params: WorkloadParams::tiny(),
        racy: false,
        threads: 1,
        chunks: 8,
        store: None,
        metrics: None,
        metrics_out: None,
        trace_out: None,
        timeline: false,
        json: false,
        seeds: 100,
        minutes: None,
        emit_corpus: None,
        per_shape: 2,
    };
    let mut size_default = false;
    let mut seed = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {flag} needs a value");
                usage()
            })
        };
        let parse_count = |flag: &str, value: String| {
            value
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a positive integer");
                    usage()
                })
        };
        match flag.as_str() {
            "--workload" => opts.workload = Some(parse_workload(&value())),
            "--mode" => opts.mode = parse_mode(&value()),
            "--out" => opts.out = Some(value()),
            "--input" => opts.input = Some(value()),
            "--algorithm" => opts.algorithm = Some(value()),
            "--size" => match value().as_str() {
                "tiny" => size_default = false,
                "default" => size_default = true,
                other => {
                    eprintln!("unknown size '{other}'");
                    usage()
                }
            },
            "--seed" => {
                seed = Some(value().parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("--seed needs an unsigned integer");
                    usage()
                }))
            }
            "--racy" => opts.racy = true,
            "--store" => opts.store = Some(value()),
            "--metrics" => opts.metrics = Some(MetricsFormat::Text),
            flag if flag.starts_with("--metrics=") => {
                opts.metrics = Some(parse_metrics_format(&flag["--metrics=".len()..]));
            }
            "--metrics-out" => opts.metrics_out = Some(value()),
            "--trace-out" => opts.trace_out = Some(value()),
            "--timeline" => opts.timeline = true,
            "--json" => opts.json = true,
            "--seeds" => opts.seeds = parse_count(flag, value()),
            "--minutes" => opts.minutes = Some(parse_count(flag, value())),
            "--emit-corpus" => opts.emit_corpus = Some(value()),
            "--per-shape" => opts.per_shape = parse_count(flag, value()) as usize,
            "--chunks" => {
                opts.chunks = value()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--chunks needs a positive integer");
                        usage()
                    })
            }
            "--threads" => {
                opts.threads = value()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        usage()
                    })
            }
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    if size_default {
        opts.params = WorkloadParams::default();
    }
    if let Some(seed) = seed {
        opts.params.seed = seed;
    }
    opts
}

/// Turns the recorders the parsed flags ask for on, before the command
/// runs: `--metrics`/`--metrics-out` enable the span/metric recorder,
/// `--trace-out`/`--timeline` additionally enable the interval journal.
fn enable_observability(opts: &Options) {
    if opts.metrics.is_some() || opts.metrics_out.is_some() {
        futurerd_obs::set_enabled(true);
    }
    if opts.trace_out.is_some() || opts.timeline {
        futurerd_obs::set_timeline_enabled(true);
    }
}

/// Emits the recorded observability artifacts after the command ran:
/// the metrics snapshot (to `--metrics-out` or stdout) and the interval
/// timeline (`--timeline` text to stdout, `--trace-out` Chrome-trace
/// JSON to a file). Returns `false` when a file could not be written.
fn emit_observability(opts: &Options) -> bool {
    let mut ok = true;
    if let Some(path) = &opts.metrics_out {
        // File artifacts default to JSON-lines (one parseable object per
        // row) unless --metrics picked a format explicitly.
        let rendered = render_metrics(opts.metrics.unwrap_or(MetricsFormat::Json));
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("cannot write metrics to {path}: {e}");
            ok = false;
        } else {
            println!("metrics written to {path}");
        }
    } else if let Some(format) = opts.metrics {
        print!("{}", render_metrics(format));
    }
    if opts.trace_out.is_some() || opts.timeline {
        let timeline = futurerd_obs::timeline();
        if opts.timeline {
            print!("{}", futurerd_obs::export_timeline_text(&timeline));
        }
        if let Some(path) = &opts.trace_out {
            if let Err(e) = std::fs::write(path, futurerd_obs::export_chrome_trace(&timeline)) {
                eprintln!("cannot write timeline to {path}: {e}");
                ok = false;
            } else {
                let threads = timeline.utilization().len();
                println!(
                    "timeline written to {path}: {} interval(s) across {} thread(s), {} dropped",
                    timeline.intervals.len(),
                    threads,
                    timeline.dropped,
                );
            }
        }
    }
    ok
}

/// Runs `workload`/`mode` under an arbitrary observer — either the regular
/// harness variant or (with `--racy`) the seeded-race variant.
fn run_observed<O: futurerd_dag::Observer>(
    workload: WorkloadKind,
    mode: FutureMode,
    params: &WorkloadParams,
    racy: bool,
    observer: O,
) -> (O, u64) {
    if racy {
        if workload != WorkloadKind::Lcs {
            eprintln!("--racy is only available for the lcs workload");
            usage()
        }
        let input = lcs::LcsInput::generate(params.n, params.seed);
        let (value, observer, _) = futurerd_runtime::run_program(observer, |cx| {
            lcs::structured_with_race(cx, &input, params.base)
        });
        (observer, value as u64)
    } else {
        let (observer, result) = run_workload(workload, mode, params, observer);
        (observer, result.checksum)
    }
}

/// Records `workload`/`mode` under a [`TraceRecorder`] and returns the trace
/// plus the run's checksum and wall-clock time.
fn record_trace(
    workload: WorkloadKind,
    mode: FutureMode,
    params: &WorkloadParams,
    racy: bool,
) -> (Trace, u64, std::time::Duration) {
    let start = Instant::now();
    let (recorder, checksum) = run_observed(workload, mode, params, racy, TraceRecorder::new());
    let elapsed = start.elapsed();
    (recorder.into_trace(), checksum, elapsed)
}

/// Runs `workload`/`mode` in-process under the full detector for
/// `algorithm`. SP-Bags is only attempted on futures-free executions.
fn detect_in_process(
    workload: WorkloadKind,
    mode: FutureMode,
    params: &WorkloadParams,
    racy: bool,
    algorithm: ReplayAlgorithm,
) -> RaceReport {
    match algorithm {
        ReplayAlgorithm::MultiBags => run_observed(
            workload,
            mode,
            params,
            racy,
            RaceDetector::<MultiBags>::structured(),
        )
        .0
        .into_report(),
        ReplayAlgorithm::MultiBagsPlus => run_observed(
            workload,
            mode,
            params,
            racy,
            RaceDetector::<MultiBagsPlus>::general(),
        )
        .0
        .into_report(),
        ReplayAlgorithm::SpBags => run_observed(
            workload,
            mode,
            params,
            racy,
            RaceDetector::new(SpBags::new()),
        )
        .0
        .into_report(),
        ReplayAlgorithm::SpBagsConservative => run_observed(
            workload,
            mode,
            params,
            racy,
            RaceDetector::new(SpBagsConservative::new()),
        )
        .0
        .into_report(),
        ReplayAlgorithm::GraphOracle => run_observed(
            workload,
            mode,
            params,
            racy,
            RaceDetector::new(GraphOracle::new()),
        )
        .0
        .into_report(),
    }
}

fn verdict_line(algorithm: ReplayAlgorithm, report: &RaceReport, elapsed: std::time::Duration) {
    println!(
        "  {:<11} {:>4} racy granules, {:>6} observations   ({:.2?})",
        algorithm.name(),
        report.race_count(),
        report.total_observations(),
        elapsed
    );
}

fn cmd_record(opts: &Options) -> ExitCode {
    let Some(workload) = opts.workload else {
        eprintln!("record needs --workload");
        usage()
    };
    let Some(out) = &opts.out else {
        eprintln!("record needs --out");
        usage()
    };
    let (trace, checksum, elapsed) = record_trace(workload, opts.mode, &opts.params, opts.racy);
    let counts = match trace.validate() {
        Ok(counts) => counts,
        Err(e) => {
            eprintln!("recorded trace failed validation (bug): {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = trace.save(out) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "recorded {workload} ({mode}) in {elapsed:.2?}: {events} events, {counts}",
        mode = opts.mode,
        events = trace.len(),
    );
    println!("checksum {checksum:#x}; wrote {bytes} bytes to {out}");
    // Report what each codec generation bought: v2 delta-encodes accesses,
    // v3 run-length encodes constant-stride bursts (and checksums the
    // payload).
    let v1_bytes = trace
        .to_bytes_versioned(TRACE_VERSION_V1)
        .map(|b| b.len() as u64)
        .unwrap_or(0);
    let v2_bytes = trace
        .to_bytes_versioned(TRACE_VERSION_V2)
        .map(|b| b.len() as u64)
        .unwrap_or(0);
    if v1_bytes > 0 && v2_bytes > 0 {
        let vs_v2 = 100.0 * (bytes as f64 / v2_bytes as f64 - 1.0);
        let vs_v1 = 100.0 * (bytes as f64 / v1_bytes as f64 - 1.0);
        println!(
            "codec v{TRACE_VERSION} (run-length bursts + checksum): {bytes} bytes vs {v2_bytes} in v{TRACE_VERSION_V2} ({vs_v2:+.1}%) and {v1_bytes} in v{TRACE_VERSION_V1} ({vs_v1:+.1}%)"
        );
    }
    ExitCode::SUCCESS
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let Some((dir, rest)) = args.split_first() else {
        eprintln!("batch needs a store directory");
        usage()
    };
    if dir.starts_with("--") {
        eprintln!("batch needs the store directory before any flags");
        usage()
    }
    let opts = parse_options(rest);
    enable_observability(&opts);
    let algorithms: Vec<ReplayAlgorithm> = match opts.algorithm.as_deref() {
        None | Some("all") => vec![ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus],
        Some(name) => match ReplayAlgorithm::parse(name) {
            Some(algorithm) if algorithm.freezable() => vec![algorithm],
            Some(algorithm) => {
                eprintln!("{algorithm}: no frozen reachability form, the store cannot serve it");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("unknown algorithm '{name}'");
                usage()
            }
        },
    };
    let mut store = match Store::open(dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open store at {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names = match store.trace_names() {
        Ok(names) => names,
        Err(e) => {
            eprintln!("cannot list {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if names.is_empty() {
        eprintln!("no *.trace files in {dir}");
        return ExitCode::FAILURE;
    }
    for name in &names {
        for &algorithm in &algorithms {
            store.submit(BatchJob {
                trace: name.clone(),
                algorithm,
                threads: opts.threads,
            });
        }
    }
    let start = Instant::now();
    let queued = store.pending_jobs();
    let manifest = match store.run_batch() {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!("batch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{manifest}");
    let stats = store.stats();
    println!(
        "{queued} job(s) in {:.2?}: {} cold freeze(s), {} warm load(s), {} fully cached, {} incremental; manifest written to {dir}/batch-manifest.txt",
        start.elapsed(),
        stats.cold_freezes,
        stats.warm_index_loads,
        stats.warm_cached_hits,
        stats.incremental_refreezes,
    );
    println!(
        "store: {} partition(s) rerun, {} reused, {} rebalance(s), {} invalidated sidecar(s)",
        stats.partitions_rerun,
        stats.partitions_reused,
        stats.rebalances,
        stats.invalidated_sidecars,
    );
    if futurerd_obs::enabled() {
        stats.export_metrics("store");
    }
    let emitted = emit_observability(&opts);
    if manifest.all_ok() && emitted {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(opts: &Options) -> ExitCode {
    let Some(input) = &opts.input else {
        eprintln!("replay needs --input");
        usage()
    };
    let trace = match Trace::load(input) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let counts = match trace.validate() {
        Ok(counts) => counts,
        Err(e) => {
            eprintln!("{input} is not a canonical serial-DF trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{input}: {events} events, {counts}", events = trace.len());
    let (algorithms, explicit): (Vec<ReplayAlgorithm>, bool) = match opts.algorithm.as_deref() {
        None | Some("all") => (ReplayAlgorithm::ALL.to_vec(), false),
        Some(name) => match ReplayAlgorithm::parse(name) {
            Some(algorithm) => (vec![algorithm], true),
            None => {
                eprintln!("unknown algorithm '{name}'");
                usage()
            }
        },
    };
    for algorithm in algorithms {
        if !algorithm.runnable_for(&trace) {
            if explicit {
                // The user asked for this specific detector and it cannot
                // run: that is a failure, not a skip.
                eprintln!(
                    "{}: not runnable, the trace uses futures (SP-Bags aborts by design)",
                    algorithm.name()
                );
                return ExitCode::FAILURE;
            }
            println!(
                "  {:<11} not runnable: the trace uses futures (SP-Bags aborts by design)",
                algorithm.name()
            );
            continue;
        }
        let start = Instant::now();
        // With the recorders on, route freezable algorithms through the
        // two-pass engine even at P=1: the report is byte-identical (the
        // determinism tests pin that) and the run gets stage-attributed
        // spans/intervals instead of one opaque blob.
        let sharded = (opts.threads > 1 || futurerd_obs::recording()) && algorithm.freezable();
        let report = if sharded {
            match par_replay_detect(&trace, algorithm, opts.threads) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("parallel replay failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            replay_detect_unchecked(&trace, algorithm)
        };
        verdict_line(algorithm, &report, start.elapsed());
        if sharded {
            println!(
                "              (sharded parallel engine, P={})",
                opts.threads
            );
        } else if opts.threads > 1 {
            println!("              (no frozen reachability form: replayed sequentially)");
        }
        if report.is_approximate() {
            println!("              (approximate verdict: fork-join baseline on a futures trace)");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(opts: &Options) -> ExitCode {
    let Some(workload) = opts.workload else {
        eprintln!("diff needs --workload");
        usage()
    };
    let (trace, _, record_time) = record_trace(workload, opts.mode, &opts.params, opts.racy);
    if let Err(e) = trace.validate() {
        eprintln!("recorded trace failed validation (bug): {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{workload} ({mode}): recorded {events} events in {record_time:.2?}",
        mode = opts.mode,
        events = trace.len(),
    );
    let mut failures = 0u32;
    let mut oracle_report = None;
    let mut sound_reports: Vec<(ReplayAlgorithm, RaceReport)> = Vec::new();
    let mut approximate_reports: Vec<(ReplayAlgorithm, RaceReport)> = Vec::new();
    for algorithm in ReplayAlgorithm::ALL {
        if !algorithm.runnable_for(&trace) {
            println!(
                "  {:<11} not runnable on futures (identically in-process and on replay)",
                algorithm.name()
            );
            continue;
        }
        let start = Instant::now();
        let replayed = replay_detect_unchecked(&trace, algorithm);
        let replay_time = start.elapsed();
        let direct = detect_in_process(workload, opts.mode, &opts.params, opts.racy, algorithm);
        let matches = replayed.race_count() == direct.race_count()
            && replayed.total_observations() == direct.total_observations()
            && replayed.witnesses() == direct.witnesses();
        verdict_line(algorithm, &replayed, replay_time);
        if matches {
            println!("              replay == in-process ✓");
        } else {
            println!(
                "              MISMATCH: in-process found {} racy granules / {} observations",
                direct.race_count(),
                direct.total_observations()
            );
            failures += 1;
        }
        if algorithm == ReplayAlgorithm::GraphOracle {
            oracle_report = Some(replayed);
        } else if algorithm.sound_for(&trace) {
            sound_reports.push((algorithm, replayed));
        } else {
            approximate_reports.push((algorithm, replayed));
        }
    }
    // The oracle replays last; compare the other algorithms against it once
    // its verdict is in (replaying it eagerly up front would pay the most
    // expensive detector twice). Counts alone cannot distinguish equal-sized
    // but different racy-granule sets, so every comparison measures the full
    // sets: granules the oracle found that the algorithm missed, and
    // granules the algorithm reported that the oracle did not.
    let mut genuine_missed = 0usize;
    let mut genuine_spurious = 0usize;
    let mut approx_missed = 0usize;
    let mut approx_spurious = 0usize;
    if let Some(oracle) = &oracle_report {
        // Approximate baselines (conservative SP-Bags on futures, MultiBags
        // on multi-touch traces) are not held to agreement — quantify their
        // error instead, the number the paper's algorithms exist to remove.
        for (algorithm, report) in &approximate_reports {
            let error = ApproximationError::measure(*algorithm, report, oracle);
            approx_missed += error.missed;
            approx_spurious += error.spurious;
            println!(
                "  {:<11} approximate vs oracle: {} racy granule(s) missed, {} spurious (by design, not a failure)",
                algorithm.name(),
                error.missed,
                error.spurious,
            );
        }
        // A sound algorithm must agree with the oracle exactly: any missed
        // or spurious granule is a genuine divergence, not an approximation.
        for (algorithm, report) in &sound_reports {
            let error = ApproximationError::measure(*algorithm, report, oracle);
            if error.missed == 0 && error.spurious == 0 {
                continue;
            }
            println!(
                "  {:<11} MISMATCH vs oracle: {} racy granule(s) missed, {} spurious",
                algorithm.name(),
                error.missed,
                error.spurious,
            );
            genuine_missed += error.missed;
            genuine_spurious += error.spurious;
            failures += 1;
        }
    }
    println!(
        "diff: {failures} genuine divergence(s) ({genuine_missed} missed / {genuine_spurious} spurious racy granules), {} known approximation(s) ({approx_missed} missed / {approx_spurious} spurious) => {}",
        approximate_reports.len(),
        if failures == 0 { "AGREE" } else { "DIVERGED" },
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} verdict mismatch(es)");
        ExitCode::FAILURE
    }
}

/// Drives one long-lived detection session over a growing execution: the
/// recorded event stream is ingested in `--chunks` appends, re-detecting
/// after each. Prints one line per append with the serving path, then
/// cross-checks the final verdict against one-shot replay.
fn cmd_follow(opts: &Options) -> ExitCode {
    let Some(workload) = opts.workload else {
        eprintln!("follow needs --workload");
        usage()
    };
    let algorithm = match opts.algorithm.as_deref() {
        None | Some("multibags") => futurerd::Algorithm::MultiBags,
        Some("multibags+") => futurerd::Algorithm::MultiBagsPlus,
        Some(other) => {
            eprintln!("follow serves the freezable algorithms only (got '{other}')");
            usage()
        }
    };
    let (trace, _, record_time) = record_trace(workload, opts.mode, &opts.params, opts.racy);
    if let Err(e) = trace.validate() {
        eprintln!("recorded trace failed validation (bug): {e}");
        return ExitCode::FAILURE;
    }
    let events = trace.events();
    println!(
        "{workload} ({mode}): recorded {n} events in {record_time:.2?}; following in {chunks} chunk(s), {algorithm:?} P={threads}",
        mode = opts.mode,
        n = events.len(),
        chunks = opts.chunks,
        threads = opts.threads,
    );

    let config = futurerd::Config::new()
        .algorithm(algorithm)
        .threads(opts.threads);
    let mut store: Option<futurerd::Store> = None;
    let mut session = match &opts.store {
        Some(dir) => {
            let mut opened = match futurerd::Config::store(dir) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("cannot open store at {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = format!("follow-{}-{}", workload.name(), opts.mode);
            // Seed an empty entry only on first use — an existing entry is
            // the previous run's persisted state and the session resumes
            // from it (warm, from the FRDIDX sidecar).
            let seed_empty = |store: &mut futurerd::Store| {
                store.put_trace(&name, &futurerd_dag::trace::Trace::new())
            };
            if !opened.trace_path(&name).exists() {
                if let Err(e) = seed_empty(&mut opened) {
                    eprintln!("cannot seed store entry '{name}': {e}");
                    return ExitCode::FAILURE;
                }
            }
            // The stored stream must be a prefix of this recording (the
            // workloads are deterministic, so a matching run resumes); a
            // diverged entry — different params under the same name — is
            // reset rather than poisoned. Check the trace file directly so
            // the reset happens before the (borrowing) session opens.
            match opened.load_trace(&name) {
                Ok(stored)
                    if stored.len() > events.len()
                        || stored.events() != &events[..stored.len()] =>
                {
                    println!("  stored entry '{name}' diverged from this recording; resetting");
                    if let Err(e) = seed_empty(&mut opened) {
                        eprintln!("cannot reset store entry '{name}': {e}");
                        return ExitCode::FAILURE;
                    }
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!("cannot read store entry '{name}': {e}");
                    return ExitCode::FAILURE;
                }
            }
            match config.open_session(store.insert(opened), &name) {
                Ok(session) => session,
                Err(e) => {
                    eprintln!("cannot open stored session '{name}': {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => config.session(),
    };
    if !session.is_empty() {
        println!(
            "  resuming stored session at {} event(s) already ingested",
            session.len()
        );
    }

    let chunk_len = events.len().div_ceil(opts.chunks);
    let start = Instant::now();
    let events = &events[session.len()..]; // only the part not yet ingested
    for (i, chunk) in events.chunks(chunk_len.max(1)).enumerate() {
        let ingest_start = Instant::now();
        if let Err(e) = session.ingest(chunk) {
            eprintln!("append {i} refused: {e}");
            return ExitCode::FAILURE;
        }
        let detection = match session.report() {
            Ok(detection) => detection,
            Err(e) => {
                eprintln!("report after append {i} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  +{:>6} ev → {:>7} total: {:>3} racy granules   [{}]   ({:.2?})",
            chunk.len(),
            session.len(),
            detection.race_count(),
            detection
                .path
                .map(|p| p.to_string())
                .unwrap_or_else(|| "unrouted".into()),
            ingest_start.elapsed(),
        );
    }
    let follow_time = start.elapsed();

    // The whole point of sessions: the final incremental verdict is
    // byte-identical to one-shot replay of the full trace.
    let one_shot = match config.replay(&trace) {
        Ok(detection) => detection,
        Err(e) => {
            eprintln!("one-shot replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let last = match session.report() {
        Ok(detection) => detection,
        Err(e) => {
            eprintln!("final report failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if last.report().to_string() != one_shot.report().to_string() {
        eprintln!(
            "MISMATCH: followed session found {} racy granules, one-shot replay {}",
            last.race_count(),
            one_shot.race_count()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "followed {} events in {follow_time:.2?}; final verdict == one-shot replay ✓",
        events.len()
    );
    // The session holds the store borrow; release it so the aggregate
    // serving statistics can be read out for satellite visibility.
    drop(session);
    if let Some(store) = &store {
        let stats = store.stats();
        println!(
            "  store: {} cold freeze(s), {} warm load(s), {} fully cached, {} incremental ({} partition(s) rerun, {} reused, {} rebalance(s), {} invalidated sidecar(s))",
            stats.cold_freezes,
            stats.warm_index_loads,
            stats.warm_cached_hits,
            stats.incremental_refreezes,
            stats.partitions_rerun,
            stats.partitions_reused,
            stats.rebalances,
            stats.invalidated_sidecars,
        );
        stats.export_metrics("store");
    }
    ExitCode::SUCCESS
}

/// Differentially fuzzes the detector matrix on seeded generated programs,
/// or (with `--emit-corpus`) regenerates the minimized fixture corpus.
fn cmd_fuzz(opts: &Options) -> ExitCode {
    if let Some(dir) = &opts.emit_corpus {
        let start = Instant::now();
        return match futurerd_fuzz::fixture::emit_corpus(std::path::Path::new(dir), opts.per_shape)
        {
            Ok(written) => {
                println!(
                    "wrote {} minimized fixture(s) to {dir} in {:.2?}: {}",
                    written.len(),
                    start.elapsed(),
                    written.join(" ")
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot emit corpus into {dir}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let fuzz_opts = FuzzOptions {
        deadline: opts
            .minutes
            .map(|m| Instant::now() + Duration::from_secs(m * 60)),
        ..FuzzOptions::default()
    };
    let start = Instant::now();
    let summary = run_fuzz(0..opts.seeds, &fuzz_opts);
    for bug in &summary.real_bugs {
        eprintln!("  {bug}");
    }
    println!("{} ({:.2?})", summary.summary_line(), start.elapsed());
    if summary.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints one profile table: every recorded stage with count / total /
/// mean / max, plus how much of the wall clock the four disjoint
/// coordinator stages account for.
fn print_profile(threads: usize, wall: Duration, snapshot: &futurerd_obs::Snapshot) {
    println!("P={threads}: wall {wall:.2?}");
    println!(
        "  {:<24} {:>7} {:>12} {:>12} {:>12}",
        "stage", "count", "total", "mean", "max"
    );
    for row in &snapshot.stages {
        println!(
            "  {:<24} {:>7} {:>12} {:>12} {:>12}",
            row.name,
            row.stats.count,
            futurerd_obs::fmt_duration_ns(row.stats.total_ns),
            futurerd_obs::fmt_duration_ns(row.stats.avg_ns()),
            futurerd_obs::fmt_duration_ns(row.stats.max_ns),
        );
    }
    // "validate", "freeze", "detect" and "merge" are the disjoint top-level
    // coordinator stages — nested spans (freeze.assist.*, detect.partition)
    // overlap them and are detail, not additional time. Their sum is the
    // pipeline's critical-path accounting and should approach wall clock.
    let accounted = snapshot.total_ns_of(&["validate", "freeze", "detect", "merge"]);
    let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    let pct = if wall_ns == 0 {
        100.0
    } else {
        100.0 * accounted as f64 / wall_ns as f64
    };
    println!(
        "  validate+freeze+detect+merge: {} of {} wall ({pct:.1}%)",
        futurerd_obs::fmt_duration_ns(accounted),
        futurerd_obs::fmt_duration_ns(wall_ns),
    );
}

/// Renders one profiled point as a machine-readable JSON line (stages in
/// snapshot — name-sorted — order).
fn profile_json_line(threads: usize, wall: Duration, snapshot: &futurerd_obs::Snapshot) -> String {
    let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    let accounted = snapshot.total_ns_of(&["validate", "freeze", "detect", "merge"]);
    let stages: Vec<String> = snapshot
        .stages
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                row.name, row.stats.count, row.stats.total_ns, row.stats.min_ns, row.stats.max_ns
            )
        })
        .collect();
    format!(
        "{{\"threads\":{threads},\"wall_ns\":{wall_ns},\"accounted_ns\":{accounted},\"stages\":[{}]}}",
        stages.join(",")
    )
}

/// Replays one trace through the sharded engine at P=1 and P=N with the
/// span recorder on, printing the stage-time breakdown for each run —
/// as text tables, or with `--json` as one JSON line per thread count.
fn cmd_profile(args: &[String]) -> ExitCode {
    let Some((path, rest)) = args.split_first() else {
        eprintln!("profile needs a trace file");
        usage()
    };
    if path.starts_with("--") {
        eprintln!("profile needs the trace file before any flags");
        usage()
    }
    let opts = parse_options(rest);
    let algorithm = match opts.algorithm.as_deref() {
        None | Some("multibags") => ReplayAlgorithm::MultiBags,
        Some("multibags+") => ReplayAlgorithm::MultiBagsPlus,
        Some(other) => {
            eprintln!("profile drives the freezable algorithms only (got '{other}')");
            usage()
        }
    };
    let trace = match Trace::load(path) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Default P: --threads wins, then FUTURERD_PAR_THREADS (the knob the
    // test suites honor), then the machine's parallelism.
    let n = if opts.threads > 1 {
        opts.threads
    } else {
        std::env::var("FUTURERD_PAR_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    };
    // Status goes to stderr in --json mode so stdout stays parseable.
    let status = |line: String| {
        if opts.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    status(format!(
        "{path}: {} events; profiling {} at P=1 and P={n}",
        trace.len(),
        algorithm.name(),
    ));
    futurerd_obs::set_enabled(true);
    enable_observability(&opts);
    let points: &[usize] = if n == 1 { &[1] } else { &[1, n] };
    let mut race_counts = Vec::new();
    for &threads in points {
        futurerd_obs::reset();
        let start = Instant::now();
        let report = match par_replay_detect(&trace, algorithm, threads) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("replay at P={threads} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let wall = start.elapsed();
        if opts.json {
            println!(
                "{}",
                profile_json_line(threads, wall, &futurerd_obs::snapshot())
            );
        } else {
            print_profile(threads, wall, &futurerd_obs::snapshot());
        }
        race_counts.push(report.race_count());
    }
    if race_counts.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("MISMATCH: verdict changed with thread count (bug)");
        return ExitCode::FAILURE;
    }
    if opts.json {
        println!(
            "{{\"verdict\":{{\"races\":{},\"consistent\":true}}}}",
            race_counts[0]
        );
    } else {
        println!(
            "verdict: {} racy granules (identical at every P) ✓",
            race_counts[0]
        );
    }
    // profile resets the recorders between thread counts, so the journal
    // emitted here covers the last profiled point (P=n).
    if !emit_observability(&opts) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `regress`: re-measure the fig benches in smoke mode (or load a saved
/// run with `--from`), compare against `--against` with noise-aware
/// thresholds, append a perf-trajectory entry, and fail on regressions.
fn cmd_regress(args: &[String]) -> ExitCode {
    use futurerd_bench::regress;
    let mut against: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut out: Option<String> = None;
    let mut from: Option<String> = None;
    let mut samples: u32 = 5;
    let mut inflate: f64 = 1.0;
    let mut trajectory: Option<String> = None;
    let mut no_trajectory = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--against" => against = Some(value()),
            "--bench" => bench = Some(value()),
            "--out" => out = Some(value()),
            "--from" => from = Some(value()),
            "--samples" => {
                samples = value()
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--samples needs a positive integer");
                        usage()
                    })
            }
            "--inflate" => {
                inflate = value()
                    .parse::<f64>()
                    .ok()
                    .filter(|&f| f > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--inflate needs a positive factor");
                        usage()
                    })
            }
            "--trajectory" => trajectory = Some(value()),
            "--no-trajectory" => no_trajectory = true,
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    let Some(against) = against else {
        eprintln!("regress needs --against <baseline.json>");
        usage()
    };
    let baseline = match regress::load_results(&against) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let group = bench.as_deref().map(regress::resolve_group);
    let mut run = match &from {
        Some(path) => match regress::load_results(path) {
            Ok(doc) => doc.results,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => regress::smoke_results(bench.as_deref(), samples, |line| println!("  {line}")),
    };
    if let Some(group) = group {
        let prefix = format!("{group}/");
        run.retain(|r| r.id.starts_with(&prefix));
    }
    if run.is_empty() {
        eprintln!(
            "regress: nothing to compare{}",
            bench
                .map(|b| format!(" for --bench {b}"))
                .unwrap_or_default()
        );
        return ExitCode::FAILURE;
    }
    if inflate != 1.0 {
        println!("  (--inflate {inflate}: scaling this run's times — harness self-test)");
        for r in &mut run {
            let scale = |ns: u64| ((ns as f64) * inflate).min(u64::MAX as f64) as u64;
            r.mean_ns = scale(r.mean_ns);
            r.min_ns = scale(r.min_ns);
            r.max_ns = scale(r.max_ns);
        }
    }
    if let Some(path) = &out {
        let doc = regress::format_results_doc(&run, "futurerd-trace regress smoke run");
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  run results written to {path}");
    }
    let baseline_ids: Vec<_> = match group {
        Some(group) => {
            let prefix = format!("{group}/");
            baseline
                .results
                .iter()
                .filter(|r| r.id.starts_with(&prefix))
                .cloned()
                .collect()
        }
        None => baseline.results.clone(),
    };
    let comparisons = regress::compare(&baseline_ids, &run);
    print!("{}", regress::format_comparison(&comparisons));
    println!(
        "  (smoke subset: {} of {} baseline id(s) re-measured; full sweep: cargo bench)",
        comparisons
            .iter()
            .filter(|c| c.baseline_mean_ns.is_some())
            .count(),
        baseline_ids.len(),
    );
    if !no_trajectory {
        let path = trajectory.unwrap_or_else(|| "BENCH_trajectory.jsonl".to_string());
        let source = if from.is_some() { "from" } else { "smoke" };
        let entry = regress::trajectory_entry(&against, source, &comparisons);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, entry.as_bytes()));
        match appended {
            Ok(()) => println!("  trajectory entry appended to {path}"),
            Err(e) => {
                eprintln!("cannot append trajectory entry to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if comparisons
        .iter()
        .any(|c| c.verdict == regress::Verdict::Regressed)
    {
        eprintln!("regress: FAILED (regressions above the noise-aware threshold)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `lint`: run the workspace invariant linter (token-level, no rustc).
///
/// Exit status is the gate: 0 when the tree is clean, 1 with a rendered
/// violation list otherwise. `--self-test` instead lints the fabricated
/// seeded-violation sources and fails unless every rule fires — CI runs
/// it first so a silently broken linter cannot green the gate.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = String::from(".");
    let mut self_test = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().unwrap_or_else(|| usage()).clone(),
            "--self-test" => self_test = true,
            _ => usage(),
        }
    }
    let config = futurerd_check::lint::LintConfig::repo();
    let manifest = futurerd_obs::names::MANIFEST;
    if self_test {
        let report = futurerd_check::lint::seeded_violations(manifest, &config);
        let mut missing = Vec::new();
        for rule in futurerd_check::lint::Rule::ALL {
            if !report.violations.iter().any(|v| v.rule == rule) {
                missing.push(rule);
            }
        }
        if missing.is_empty() {
            println!(
                "lint self-test: every rule fired on the seeded sources ({} violations)",
                report.violations.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("lint self-test: rules failed to fire on seeded sources: {missing:?}");
        eprintln!("{}", report.render());
        return ExitCode::FAILURE;
    }
    match futurerd_check::lint::lint_workspace(std::path::Path::new(&root), manifest, &config) {
        Ok(report) if report.ok() => {
            println!("lint: clean");
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprint!("{}", report.render());
            eprintln!("lint: {} violation(s)", report.violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: cannot read workspace under {root}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `check`: explore the shipped lock-free cores under the model shim.
///
/// Runs the planted-bug self-tests first (the explorer must catch every
/// deliberately broken twin and hand back a replayable schedule), then
/// the real-core suite. Any schedule violating a protocol invariant
/// prints a replayable counterexample trace and exits non-zero.
fn cmd_check(args: &[String]) -> ExitCode {
    let mut config = futurerd_check::model::Config::exhaustive();
    let mut planted = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preemptions" => {
                let n = it.next().unwrap_or_else(|| usage());
                config.preemption_bound = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--max-executions" => {
                let n = it.next().unwrap_or_else(|| usage());
                config.max_executions = n.parse().unwrap_or_else(|_| usage());
            }
            "--skip-planted" => planted = false,
            _ => usage(),
        }
    }
    // The planted bodies panic on purpose inside the explorer (that is
    // what "caught" means); keep the default hook from spraying
    // backtraces and report payloads ourselves.
    std::panic::set_hook(Box::new(|_| {}));
    let mut failed = false;
    if planted {
        for (name, run) in futurerd_check::selftest::all() {
            match std::panic::catch_unwind(run) {
                Ok(cex) => println!(
                    "check planted:{name}: caught after {} executions (schedule len {})",
                    cex.executions,
                    cex.schedule.len()
                ),
                Err(payload) => {
                    eprintln!(
                        "check planted:{name}: explorer MISSED the planted bug\n{}",
                        panic_message(&payload)
                    );
                    failed = true;
                }
            }
        }
    }
    for (name, run) in futurerd_bench::checksuite::all() {
        let config = config.clone();
        match std::panic::catch_unwind(move || run(&config)) {
            Ok(stats) => println!(
                "check {name}: pass ({} executions, {} transitions, {} pruned)",
                stats.executions, stats.transitions, stats.pruned
            ),
            Err(payload) => {
                eprintln!("check {name}: FAIL\n{}", panic_message(&payload));
                failed = true;
            }
        }
    }
    let _ = std::panic::take_hook();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Human text of a caught panic payload (the rendered counterexample).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage()
    };
    if command == "lint" {
        return cmd_lint(rest);
    }
    if command == "check" {
        return cmd_check(rest);
    }
    if command == "batch" {
        return cmd_batch(rest);
    }
    if command == "profile" {
        return cmd_profile(rest);
    }
    if command == "regress" {
        return cmd_regress(rest);
    }
    let opts = parse_options(rest);
    enable_observability(&opts);
    let code = match command.as_str() {
        "record" => cmd_record(&opts),
        "replay" => cmd_replay(&opts),
        "diff" => cmd_diff(&opts),
        "follow" => cmd_follow(&opts),
        "fuzz" => cmd_fuzz(&opts),
        _ => usage(),
    };
    if !emit_observability(&opts) && code == ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    code
}
