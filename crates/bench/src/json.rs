//! A minimal JSON reader for the benchmark tooling.
//!
//! The workspace deliberately carries no serde (the vendored crate is a
//! no-op derive shim), but the regression harness must read
//! `BENCH_baseline.json` and the `FUTURERD_BENCH_JSON` sample streams. This
//! module parses the full JSON grammar into a small [`Json`] tree — enough
//! to navigate objects/arrays and pull numbers and strings back out. It is
//! a reader, not a general-purpose serializer; writers in this workspace
//! format JSON by hand.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the tooling's magnitudes fit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (lookups only).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON document; trailing content is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing content after JSON document"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The array elements, or `None`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rounded), or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0).then_some(n.round() as u64)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> String {
        format!("JSON error at byte {}: {}", self.pos, message)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our writers;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // SAFETY: the input came in as a &str and `pos` only ever
                    // advances by whole scalars, so the remaining bytes are
                    // valid UTF-8 starting at a char boundary.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"results":[{"id":"x","mean_ns":42}],"n":2}"#).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results[0].get("id").unwrap().as_str(), Some("x"));
        assert_eq!(results[0].get("mean_ns").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(2.0));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parses_the_checked_in_baseline_shape() {
        let doc = Json::parse(
            r#"{
              "note": "text",
              "results": [
                {"id": "g/b/multibags", "mean_ns": 383250, "min_ns": 327720,
                 "max_ns": 545603, "samples": 10, "iters_per_sample": 94}
              ],
              "benches": ["fig8_basecase"]
            }"#,
        )
        .unwrap();
        let r = &doc.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(r.get("min_ns").unwrap().as_u64(), Some(327720));
        assert_eq!(
            doc.get("benches").unwrap().as_arr().unwrap()[0].as_str(),
            Some("fig8_basecase")
        );
    }
}
