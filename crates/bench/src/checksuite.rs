//! Model-check suite over the real shim-generic cores.
//!
//! The planted-bug self-tests in `futurerd_check::selftest` prove the
//! explorer can catch protocol bugs; this suite points the same explorer
//! at the *shipped* cores — [`ChunkIndexCore`], [`SpinLatchCore`],
//! [`CountLatchCore`], [`TimelineJournal`], [`MetricsRegistry`] — each
//! instantiated on the model shim and exhaustively explored at 2–3
//! threads. A pass here means every interleaving within the bounds
//! upholds the protocol invariant; a failure panics with a replayable
//! schedule trace.
//!
//! Run it via `futurerd-trace check` or `cargo test -p futurerd-bench
//! --test model_check`.

use std::sync::Arc;

use futurerd_check::model::thread;
use futurerd_check::model::{self, CheckCell, Config, ModelShim, PassStats};
use futurerd_check::sync::{AtomicIntShim, AtomicShim, Ordering};
use futurerd_core::parallel::ChunkIndexCore;
use futurerd_obs::proto::{MetricsRegistry, TimelineJournal};
use futurerd_runtime::pool::latch::{CountLatchCore, SpinLatchCore};

type ModelAtomicU64 = <ModelShim as futurerd_check::sync::SyncShim>::AtomicU64;

/// Two workers drain a 2-unit chunk index (chunk size 1): every unit is
/// claimed exactly once and the index reports drained afterwards.
pub fn chunk_index_exact_claims_2t(config: &Config) -> PassStats {
    model::check(config, "chunk-index-exact-claims-2t", || {
        chunk_index_body(2, 1)
    })
}

/// Three workers over a 3-unit index — the widest exhaustive config.
pub fn chunk_index_exact_claims_3t(config: &Config) -> PassStats {
    model::check(config, "chunk-index-exact-claims-3t", || {
        chunk_index_body(3, 2)
    })
}

fn chunk_index_body(len: usize, extra_workers: usize) {
    let index = Arc::new(ChunkIndexCore::<ModelShim>::new(len, 1));
    let claims: Arc<Vec<ModelAtomicU64>> =
        Arc::new((0..len).map(|_| ModelAtomicU64::new(0)).collect());
    let worker = {
        let index = Arc::clone(&index);
        let claims = Arc::clone(&claims);
        move || {
            while let Some(range) = index.claim() {
                for unit in range {
                    let prev = claims[unit].fetch_add(1, Ordering::AcqRel);
                    assert_eq!(prev, 0, "unit {unit} claimed twice");
                }
            }
        }
    };
    let handles: Vec<_> = (0..extra_workers)
        .map(|_| thread::spawn(worker.clone()))
        .collect();
    worker();
    for h in handles {
        h.join();
    }
    for (unit, cell) in claims.iter().enumerate() {
        assert_eq!(cell.load(Ordering::Acquire), 1, "unit {unit} never claimed");
    }
    assert!(index.claim().is_none(), "drained index yielded a claim");
}

/// Once drained, the index stays drained under concurrent probing, and
/// every extra probe is tallied as a miss.
pub fn chunk_index_drained_stays_drained(config: &Config) -> PassStats {
    model::check(config, "chunk-index-drained-stays-drained", || {
        let index = Arc::new(ChunkIndexCore::<ModelShim>::new(1, 1));
        assert!(index.claim().is_some());
        let prober = {
            let index = Arc::clone(&index);
            move || assert!(index.claim().is_none(), "drained index yielded a claim")
        };
        let t = thread::spawn(prober.clone());
        prober();
        t.join();
        assert_eq!(
            index.misses(),
            2,
            "each drained probe pays exactly one miss"
        );
    })
}

/// The timeline journal's lossy push: with capacity 1 and three pushes
/// (one concurrent pair), kept + dropped always equals the push count.
pub fn timeline_journal_exact_drop_accounting(config: &Config) -> PassStats {
    model::check(config, "timeline-journal-exact-drop-accounting", || {
        const CAPACITY: usize = 1;
        let journal = Arc::new(TimelineJournal::<ModelShim>::new());
        journal.push("warm", 0, 1, CAPACITY); // fill before any concurrency
        let pusher = {
            let journal = Arc::clone(&journal);
            move |start: u64| journal.push("race", start, start + 1, CAPACITY)
        };
        let concurrent = pusher.clone();
        let t = thread::spawn(move || concurrent(10));
        pusher(20);
        t.join();
        let (intervals, dropped) = journal.snapshot();
        assert_eq!(
            intervals.len() as u64 + dropped,
            3,
            "journal accounting lost a push"
        );
    })
}

/// Two concurrent `counter_add`s on the same key merge losslessly, and a
/// gauge written by one thread is visible in the snapshot after join.
pub fn metrics_registry_merge_lossless(config: &Config) -> PassStats {
    model::check(config, "metrics-registry-merge-lossless", || {
        let registry = Arc::new(MetricsRegistry::<ModelShim>::new());
        let add = {
            let registry = Arc::clone(&registry);
            move || registry.counter_add("reach.queries", 1)
        };
        let adder = add.clone();
        let gauges = Arc::clone(&registry);
        let t = thread::spawn(move || {
            adder();
            gauges.gauge_set("pool.worker.0.executed", 7);
        });
        add();
        t.join();
        assert_eq!(
            registry.get("reach.queries"),
            Some(2),
            "registry lost an update"
        );
        assert_eq!(registry.get("pool.worker.0.executed"), Some(7));
    })
}

/// The spin latch's Release set / Acquire probe pair hands the setter's
/// writes to the prober: no data race on the result cell.
pub fn spin_latch_publishes_result(config: &Config) -> PassStats {
    model::check(config, "spin-latch-publishes-result", || {
        let latch = Arc::new(SpinLatchCore::<ModelShim>::new());
        let result = Arc::new(CheckCell::new("join-result", 0u64));
        let t = {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            thread::spawn(move || {
                result.with_mut(|r| *r = 42);
                latch.set();
            })
        };
        while !latch.probe() {}
        assert_eq!(result.with(|r| *r), 42, "probe fired before the write");
        t.join();
    })
}

/// N concurrent decrements drain the count exactly once: one (and only
/// one) caller observes the drain, so the blocking wrapper wakes waiters
/// exactly once and never misses the wake.
pub fn count_latch_drains_exactly_once(config: &Config) -> PassStats {
    model::check(config, "count-latch-drains-exactly-once", || {
        let core = Arc::new(CountLatchCore::<ModelShim>::new());
        core.increment();
        core.increment();
        let dec = {
            let core = Arc::clone(&core);
            move || core.decrement()
        };
        let other = dec.clone();
        let t = thread::spawn(other);
        let mine = dec();
        let theirs = t.join();
        assert_eq!(
            usize::from(mine) + usize::from(theirs),
            1,
            "the drain must be observed exactly once"
        );
        assert!(core.is_done());
    })
}

/// One real-core check: explores a shipped protocol under `config`.
pub type CoreCheck = fn(&Config) -> PassStats;

/// Every core check, for the CLI and the test suite.
pub fn all() -> Vec<(&'static str, CoreCheck)> {
    vec![
        (
            "chunk-index-exact-claims-2t",
            chunk_index_exact_claims_2t as CoreCheck,
        ),
        ("chunk-index-exact-claims-3t", chunk_index_exact_claims_3t),
        (
            "chunk-index-drained-stays-drained",
            chunk_index_drained_stays_drained,
        ),
        (
            "timeline-journal-exact-drop-accounting",
            timeline_journal_exact_drop_accounting,
        ),
        (
            "metrics-registry-merge-lossless",
            metrics_registry_merge_lossless,
        ),
        ("spin-latch-publishes-result", spin_latch_publishes_result),
        (
            "count-latch-drains-exactly-once",
            count_latch_drains_exactly_once,
        ),
    ]
}

/// Runs every check under `config`, returning per-check statistics.
/// Panics (with a rendered, replayable counterexample) on any failure.
pub fn run_all(config: &Config) -> Vec<(&'static str, PassStats)> {
    all()
        .into_iter()
        .map(|(name, run)| (name, run(config)))
        .collect()
}
