//! Graphviz (DOT) export of computation dags, for debugging and for
//! reproducing the paper's figures (e.g. Figure 2 and Figure 5).

use crate::graph::{Dag, EdgeKind};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Cluster strands of the same function instance into subgraphs.
    pub cluster_functions: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            name: "computation".to_string(),
            cluster_functions: true,
        }
    }
}

fn edge_style(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Continue => "color=black",
        EdgeKind::Spawn => "color=blue",
        EdgeKind::Join => "color=blue, style=dashed",
        EdgeKind::Create => "color=red, style=dashed",
        EdgeKind::Get => "color=red, style=dotted",
    }
}

/// Renders a dag as a Graphviz DOT string.
pub fn to_dot(dag: &Dag, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", options.name);
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");

    if options.cluster_functions {
        for f in 0..dag.num_functions() {
            let f = crate::ids::FunctionId(f as u32);
            let strands = dag.strands_of(f);
            if strands.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  subgraph cluster_{} {{", f.0);
            let _ = writeln!(out, "    label=\"{f}\";");
            for s in strands {
                let _ = writeln!(out, "    {} [label=\"{}\"];", s.0, s.0);
            }
            let _ = writeln!(out, "  }}");
        }
    } else {
        for s in dag.strands() {
            let _ = writeln!(out, "  {} [label=\"{}\"];", s.0, s.0);
        }
    }

    for e in dag.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [{}];",
            e.from.0,
            e.to.0,
            edge_style(e.kind)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FunctionId, StrandId};

    fn small_dag() -> Dag {
        let mut d = Dag::new();
        d.add_strand(StrandId(0), FunctionId(0));
        d.add_strand(StrandId(1), FunctionId(1));
        d.add_strand(StrandId(2), FunctionId(0));
        d.add_edge(StrandId(0), StrandId(1), EdgeKind::Create);
        d.add_edge(StrandId(0), StrandId(2), EdgeKind::Continue);
        d
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = to_dot(&small_dag(), &DotOptions::default());
        assert!(dot.starts_with("digraph computation {"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("0 -> 2"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_without_clusters() {
        let dot = to_dot(
            &small_dag(),
            &DotOptions {
                name: "g".into(),
                cluster_functions: false,
            },
        );
        assert!(dot.starts_with("digraph g {"));
        assert!(!dot.contains("subgraph"));
    }

    #[test]
    fn every_edge_kind_has_a_style() {
        for k in [
            EdgeKind::Continue,
            EdgeKind::Spawn,
            EdgeKind::Join,
            EdgeKind::Create,
            EdgeKind::Get,
        ] {
            assert!(!edge_style(k).is_empty());
        }
    }
}
