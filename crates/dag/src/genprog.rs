//! Random task-parallel program generator.
//!
//! Property-based tests need a large supply of *valid* programs that use
//! `spawn`/`sync`/`create_fut`/`get_fut` in interesting shapes. This module
//! generates [`ProgramSpec`] trees — a purely declarative description that
//! the executor in `futurerd-runtime` can interpret — under two regimes:
//!
//! * **structured** futures: every future handle is consumed at most once and
//!   the `get_fut` is always sequentially after the `create_fut` (the handle
//!   is either used later in the creating function or handed down to a single
//!   descendant task created after the future);
//! * **general** futures: handles may additionally be consumed several times
//!   and by several different tasks, producing non-series-parallel dags that
//!   only MultiBags+ can handle.
//!
//! Both regimes are *forward-pointing* by construction (the creator always
//! executes before any getter in depth-first eager order), which is the
//! paper's standing assumption for eager execution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a future within a generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FutId(pub u32);

/// Identifier of an abstract shared-memory location within a generated
/// program. The interpreter maps these to instrumented memory cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocId(pub u32);

/// One step in the body of a generated function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Perform the given reads and writes on the current strand.
    Compute {
        /// Locations read.
        reads: Vec<LocId>,
        /// Locations written.
        writes: Vec<LocId>,
    },
    /// Spawn a child task (fork-join parallelism).
    Spawn(FunctionSpec),
    /// Join all children spawned so far in this function.
    Sync,
    /// Create a future task with the given body.
    CreateFuture(FutId, FunctionSpec),
    /// Consume a future created earlier (by this function or an ancestor
    /// that handed the handle down).
    GetFuture(FutId),
}

/// The body of a generated function: a sequence of actions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Steps executed in order.
    pub actions: Vec<Action>,
}

/// A complete generated program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Body of the root function.
    pub root: FunctionSpec,
    /// Number of distinct shared-memory locations referenced.
    pub num_locations: u32,
    /// Number of futures created.
    pub num_futures: u32,
    /// Whether the program obeys the *structured futures* restrictions.
    pub structured: bool,
}

impl ProgramSpec {
    /// Total number of actions in the program (over all nested functions).
    pub fn num_actions(&self) -> usize {
        fn count(f: &FunctionSpec) -> usize {
            f.actions
                .iter()
                .map(|a| match a {
                    Action::Spawn(g) | Action::CreateFuture(_, g) => 1 + count(g),
                    _ => 1,
                })
                .sum()
        }
        count(&self.root)
    }

    /// Number of `get_fut` operations in the program (the paper's `k`).
    pub fn num_gets(&self) -> usize {
        fn count(f: &FunctionSpec) -> usize {
            f.actions
                .iter()
                .map(|a| match a {
                    Action::Spawn(g) | Action::CreateFuture(_, g) => count(g),
                    Action::GetFuture(_) => 1,
                    _ => 0,
                })
                .sum()
        }
        count(&self.root)
    }
}

/// Tunable parameters for the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenConfig {
    /// Maximum nesting depth of spawned/created tasks.
    pub max_depth: u32,
    /// Maximum number of actions per function body.
    pub max_actions: u32,
    /// Number of distinct shared locations.
    pub num_locations: u32,
    /// Allow general (multi-touch, shared-handle) futures.
    pub general_futures: bool,
    /// Probability weight of spawning a child.
    pub w_spawn: u32,
    /// Probability weight of creating a future.
    pub w_create: u32,
    /// Probability weight of a sync.
    pub w_sync: u32,
    /// Probability weight of getting an available future.
    pub w_get: u32,
    /// Probability weight of a compute (memory access) step.
    pub w_compute: u32,
    /// Maximum accesses per compute step.
    pub max_accesses: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_depth: 5,
            max_actions: 8,
            num_locations: 16,
            general_futures: false,
            w_spawn: 2,
            w_create: 2,
            w_sync: 1,
            w_get: 3,
            w_compute: 4,
            max_accesses: 3,
        }
    }
}

impl GenConfig {
    /// A configuration producing structured-futures programs.
    pub fn structured() -> Self {
        Self::default()
    }

    /// A configuration producing general-futures programs (multi-touch
    /// handles shared across tasks).
    pub fn general() -> Self {
        Self {
            general_futures: true,
            ..Self::default()
        }
    }
}

/// Generates a random program from `seed` under the given configuration.
pub fn generate_program(config: &GenConfig, seed: u64) -> ProgramSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = Generator {
        config,
        rng: &mut rng,
        next_fut: 0,
    };
    // Futures available to the root: none initially.
    let root = gen.gen_function(0, &mut Vec::new());
    ProgramSpec {
        root,
        num_locations: config.num_locations,
        num_futures: gen.next_fut,
        structured: !config.general_futures,
    }
}

struct Generator<'a> {
    config: &'a GenConfig,
    rng: &'a mut StdRng,
    next_fut: u32,
}

impl Generator<'_> {
    /// Generates a function body. `available` is the set of future handles
    /// this function may consume; handles it creates are added, and (in
    /// structured mode) handles it consumes or hands to a child are removed.
    fn gen_function(&mut self, depth: u32, available: &mut Vec<FutId>) -> FunctionSpec {
        let n_actions = self.rng.gen_range(1..=self.config.max_actions);
        let mut actions = Vec::new();
        let mut pending_spawns = 0u32;

        for _ in 0..n_actions {
            let can_nest = depth < self.config.max_depth;
            let c = self.config;
            let mut choices: Vec<(u32, u8)> = vec![(c.w_compute, 0)];
            if can_nest {
                choices.push((c.w_spawn, 1));
                choices.push((c.w_create, 2));
            }
            if pending_spawns > 0 {
                choices.push((c.w_sync, 3));
            }
            if !available.is_empty() {
                choices.push((c.w_get, 4));
            }
            let total: u32 = choices.iter().map(|(w, _)| w).sum();
            let mut pick = self.rng.gen_range(0..total.max(1));
            let mut chosen = 0u8;
            for (w, tag) in choices {
                if pick < w {
                    chosen = tag;
                    break;
                }
                pick -= w;
            }

            match chosen {
                0 => actions.push(self.gen_compute()),
                1 => {
                    // Spawn: optionally hand some available handles down.
                    let mut child_avail = self.split_handles(available);
                    let body = self.gen_function(depth + 1, &mut child_avail);
                    self.merge_back(available, child_avail);
                    actions.push(Action::Spawn(body));
                    pending_spawns += 1;
                }
                2 => {
                    let id = FutId(self.next_fut);
                    self.next_fut += 1;
                    let mut child_avail = self.split_handles(available);
                    let body = self.gen_function(depth + 1, &mut child_avail);
                    self.merge_back(available, child_avail);
                    actions.push(Action::CreateFuture(id, body));
                    available.push(id);
                }
                3 => {
                    actions.push(Action::Sync);
                    pending_spawns = 0;
                }
                4 => {
                    let idx = self.rng.gen_range(0..available.len());
                    let id = if self.config.general_futures && self.rng.gen_bool(0.5) {
                        // Multi-touch: keep the handle available.
                        available[idx]
                    } else {
                        available.swap_remove(idx)
                    };
                    actions.push(Action::GetFuture(id));
                }
                _ => unreachable!(),
            }
        }
        FunctionSpec { actions }
    }

    fn gen_compute(&mut self) -> Action {
        let n = self.rng.gen_range(1..=self.config.max_accesses);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for _ in 0..n {
            let loc = LocId(self.rng.gen_range(0..self.config.num_locations));
            if self.rng.gen_bool(0.5) {
                reads.push(loc);
            } else {
                writes.push(loc);
            }
        }
        Action::Compute { reads, writes }
    }

    /// Decide which available handles to hand to a child task. In structured
    /// mode the parent gives the handle away (preserving single ownership);
    /// in general mode the handle may be shared by parent and child.
    fn split_handles(&mut self, available: &mut Vec<FutId>) -> Vec<FutId> {
        let mut child = Vec::new();
        let mut i = 0;
        while i < available.len() {
            if self.rng.gen_bool(0.3) {
                if self.config.general_futures && self.rng.gen_bool(0.5) {
                    // Share: both parent and child hold the handle.
                    child.push(available[i]);
                    i += 1;
                } else {
                    child.push(available.swap_remove(i));
                }
            } else {
                i += 1;
            }
        }
        child
    }

    /// In general mode, handles the child did not consume flow back to the
    /// parent; in structured mode they are simply dropped (the future is
    /// never consumed, which is legal — "at most once").
    fn merge_back(&mut self, available: &mut Vec<FutId>, child_left: Vec<FutId>) {
        if self.config.general_futures {
            for h in child_left {
                if !available.contains(&h) {
                    available.push(h);
                }
            }
        }
    }
}

/// Checks the structured-futures invariants of a program spec: every future
/// is consumed at most once and only in a position sequentially after its
/// creation (guaranteed by construction here, but validated for defense in
/// depth). Returns a list of violations.
pub fn check_structured(spec: &ProgramSpec) -> Vec<String> {
    let mut touches: std::collections::HashMap<FutId, u32> = std::collections::HashMap::new();
    fn walk(f: &FunctionSpec, touches: &mut std::collections::HashMap<FutId, u32>) {
        for a in &f.actions {
            match a {
                Action::GetFuture(id) => *touches.entry(*id).or_insert(0) += 1,
                Action::Spawn(g) | Action::CreateFuture(_, g) => walk(g, touches),
                _ => {}
            }
        }
    }
    walk(&spec.root, &mut touches);
    touches
        .into_iter()
        .filter(|&(_, n)| n > 1)
        .map(|(id, n)| format!("future {id:?} consumed {n} times"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::structured();
        let a = generate_program(&cfg, 42);
        let b = generate_program(&cfg, 42);
        assert_eq!(a, b);
        let c = generate_program(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn structured_programs_are_single_touch() {
        let cfg = GenConfig::structured();
        for seed in 0..200 {
            let p = generate_program(&cfg, seed);
            assert!(p.structured);
            let violations = check_structured(&p);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn general_programs_eventually_multi_touch() {
        let cfg = GenConfig::general();
        let mut saw_multi = false;
        for seed in 0..300 {
            let p = generate_program(&cfg, seed);
            if !check_structured(&p).is_empty() {
                saw_multi = true;
                break;
            }
        }
        assert!(
            saw_multi,
            "general generator never produced a multi-touch program"
        );
    }

    #[test]
    fn programs_have_bounded_size() {
        let cfg = GenConfig {
            max_depth: 3,
            max_actions: 4,
            ..GenConfig::structured()
        };
        for seed in 0..50 {
            let p = generate_program(&cfg, seed);
            // 4 actions per level, 4 levels deep at most => coarse bound.
            assert!(p.num_actions() <= 4 + 16 + 64 + 256 + 1024);
        }
    }

    #[test]
    fn num_gets_counts_all_levels() {
        let spec = ProgramSpec {
            root: FunctionSpec {
                actions: vec![
                    Action::CreateFuture(
                        FutId(0),
                        FunctionSpec {
                            actions: vec![Action::GetFuture(FutId(1))],
                        },
                    ),
                    Action::GetFuture(FutId(0)),
                ],
            },
            num_locations: 0,
            num_futures: 2,
            structured: false,
        };
        assert_eq!(spec.num_gets(), 2);
        assert_eq!(spec.num_actions(), 3);
    }
}
