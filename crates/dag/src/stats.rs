//! Work/span and structural statistics of a computation dag.
//!
//! Following the performance model in Section 2 of the paper: the *work*
//! `T1` is the total cost of all strands and the *span* `T∞` is the cost of
//! the longest path through the dag. Here each strand has unit cost unless a
//! per-strand weight is supplied, so "work" equals the number of strands and
//! "span" the number of strands on a critical path.

use crate::graph::{Dag, EdgeKindCounts};
use crate::ids::StrandId;
use serde::{Deserialize, Serialize};

/// Summary statistics of a computation dag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagStats {
    /// Number of strands (unit-cost work, `T1`).
    pub work: u64,
    /// Length of the longest path in strands (unit-cost span, `T∞`).
    pub span: u64,
    /// Number of function instances.
    pub functions: u64,
    /// Parallelism = work / span.
    pub parallelism: f64,
    /// Edge counts per kind.
    pub edges: EdgeKindCounts,
}

/// Computes the unit-cost statistics of a dag.
pub fn dag_stats(dag: &Dag) -> DagStats {
    let weights = vec![1u64; dag.num_strands()];
    weighted_dag_stats(dag, &weights)
}

/// Computes dag statistics where strand `s` costs `weights[s.index()]`.
///
/// # Panics
///
/// Panics if `weights` is shorter than the number of strands or the dag is
/// cyclic.
pub fn weighted_dag_stats(dag: &Dag, weights: &[u64]) -> DagStats {
    assert!(weights.len() >= dag.num_strands());
    let order = dag.topological_order();
    let mut longest: Vec<u64> = vec![0; dag.num_strands()];
    let mut span = 0u64;
    let mut work = 0u64;
    for s in order {
        let w = weights[s.index()];
        work += w;
        let best_pred = dag
            .predecessors(s)
            .iter()
            .map(|&(p, _)| longest[p.index()])
            .max()
            .unwrap_or(0);
        longest[s.index()] = best_pred + w;
        span = span.max(longest[s.index()]);
    }
    let parallelism = if span == 0 {
        0.0
    } else {
        work as f64 / span as f64
    };
    DagStats {
        work,
        span,
        functions: dag.num_functions() as u64,
        parallelism,
        edges: dag.edge_kind_counts(),
    }
}

/// Returns one longest (critical) path through the dag, as a list of strands
/// from a source to a sink.
pub fn critical_path(dag: &Dag) -> Vec<StrandId> {
    if dag.is_empty() {
        return Vec::new();
    }
    let order = dag.topological_order();
    let mut longest: Vec<u64> = vec![0; dag.num_strands()];
    let mut best_pred: Vec<Option<StrandId>> = vec![None; dag.num_strands()];
    for &s in &order {
        let mut best = 0;
        let mut who = None;
        for &(p, _) in dag.predecessors(s) {
            if longest[p.index()] >= best {
                best = longest[p.index()];
                who = Some(p);
            }
        }
        longest[s.index()] = best + 1;
        best_pred[s.index()] = who;
    }
    let mut end = order[0];
    for &s in &order {
        if longest[s.index()] > longest[end.index()] {
            end = s;
        }
    }
    let mut path = vec![end];
    while let Some(p) = best_pred[path.last().unwrap().index()] {
        path.push(p);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::ids::FunctionId;

    fn diamond() -> Dag {
        let mut d = Dag::new();
        for i in 0..4 {
            d.add_strand(StrandId(i), FunctionId(0));
        }
        d.add_edge(StrandId(0), StrandId(1), EdgeKind::Spawn);
        d.add_edge(StrandId(0), StrandId(2), EdgeKind::Continue);
        d.add_edge(StrandId(1), StrandId(3), EdgeKind::Join);
        d.add_edge(StrandId(2), StrandId(3), EdgeKind::Continue);
        d
    }

    #[test]
    fn unit_stats_of_diamond() {
        let s = dag_stats(&diamond());
        assert_eq!(s.work, 4);
        assert_eq!(s.span, 3);
        assert!((s.parallelism - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.functions, 1);
    }

    #[test]
    fn weighted_stats_change_span() {
        let d = diamond();
        // Make strand 1 very heavy: critical path goes through it.
        let weights = vec![1, 10, 1, 1];
        let s = weighted_dag_stats(&d, &weights);
        assert_eq!(s.work, 13);
        assert_eq!(s.span, 12);
    }

    #[test]
    fn critical_path_of_diamond() {
        let p = critical_path(&diamond());
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], StrandId(0));
        assert_eq!(p[2], StrandId(3));
    }

    #[test]
    fn empty_dag_has_empty_path() {
        assert!(critical_path(&Dag::new()).is_empty());
    }

    #[test]
    fn chain_span_equals_work() {
        let mut d = Dag::new();
        for i in 0..6 {
            d.add_strand(StrandId(i), FunctionId(0));
            if i > 0 {
                d.add_edge(StrandId(i - 1), StrandId(i), EdgeKind::Continue);
            }
        }
        let s = dag_stats(&d);
        assert_eq!(s.work, 6);
        assert_eq!(s.span, 6);
        assert!((s.parallelism - 1.0).abs() < 1e-9);
    }
}
