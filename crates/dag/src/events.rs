//! The instrumentation event stream produced by a sequential depth-first
//! eager execution.
//!
//! The executor in `futurerd-runtime` walks the program in the paper's
//! *depth-first eager* order: when it reaches a `spawn` or `create_fut` it
//! immediately executes the child to completion before resuming the parent's
//! continuation. At every parallel construct, function return and
//! (optionally) memory access, it invokes the corresponding [`Observer`]
//! callback. Race detectors (`futurerd-core`) and the dag recorder
//! ([`crate::record::DagRecorder`]) are observers.
//!
//! Strand ids carried by construct events are allocated *at the construct*,
//! even for strands that will only begin executing later (for example the
//! continuation of a spawn, which runs after the spawned child completes in
//! eager order). [`Observer::on_strand_start`] is invoked when a strand
//! actually begins executing; this mirrors the paper's statement that "the
//! strands of a particular function F are always added to S_F before they
//! execute".

use crate::ids::{FunctionId, MemAddr, StrandId};
use serde::{Deserialize, Serialize};

/// Description of a `spawn` construct: function `parent`, executing
/// `fork_strand`, spawns `child`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpawnEvent {
    /// The spawning function instance.
    pub parent: FunctionId,
    /// The spawned child function instance.
    pub child: FunctionId,
    /// The strand of `parent` that ended with the spawn (the fork node).
    pub fork_strand: StrandId,
    /// The strand of `parent` that continues after the spawn.
    pub cont_strand: StrandId,
    /// The first strand of the spawned child.
    pub child_first_strand: StrandId,
}

/// Description of a `create_fut` construct: function `parent`, executing
/// `creator_strand`, creates the future task `child`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreateFutureEvent {
    /// The creating function instance.
    pub parent: FunctionId,
    /// The future's function instance.
    pub child: FunctionId,
    /// The strand of `parent` that ended with `create_fut` (the creator).
    pub creator_strand: StrandId,
    /// The strand of `parent` that continues after the `create_fut`.
    pub cont_strand: StrandId,
    /// The first strand of the future task.
    pub child_first_strand: StrandId,
}

/// The fork corresponding to a `sync` join (needed by MultiBags+'s handling
/// of sync nodes, Figure 4 lines 24–28 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForkInfo {
    /// `f`: the strand immediately preceding the fork (it ended with the
    /// spawn).
    pub pre_fork_strand: StrandId,
    /// `s1`: the first strand of the spawned child.
    pub child_first_strand: StrandId,
    /// `s2`: the first strand of the parent's continuation after the spawn.
    pub cont_strand: StrandId,
}

/// Description of one binary `sync` join between a parent and one of its
/// spawned children. A `sync` statement joining several children is emitted
/// as a sequence of these events, innermost (most recently spawned) child
/// first, so that the series-parallel nesting is well formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncEvent {
    /// The syncing function instance.
    pub parent: FunctionId,
    /// The spawned child being joined.
    pub child: FunctionId,
    /// `t2`: the strand of `parent` that ended at this join.
    pub pre_join_strand: StrandId,
    /// `j`: the new strand of `parent` that begins after this join.
    pub join_strand: StrandId,
    /// `t1`: the last strand of the joined child.
    pub child_last_strand: StrandId,
    /// The corresponding fork.
    pub fork: ForkInfo,
}

/// Description of a `get_fut` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GetFutureEvent {
    /// The function instance performing the get.
    pub parent: FunctionId,
    /// The future's function instance.
    pub future: FunctionId,
    /// `u`: the strand of `parent` that ended with the `get_fut` call.
    pub pre_get_strand: StrandId,
    /// `v`: the new strand of `parent` (the getter strand).
    pub getter_strand: StrandId,
    /// `w`: the last strand of the future task.
    pub future_last_strand: StrandId,
    /// How many times this future has been consumed before this get
    /// (0 for the first touch). Structured futures always see 0.
    pub prior_touches: u32,
}

/// Observer of the execution event stream.
///
/// All methods have empty default implementations so observers only override
/// what they need; unused callbacks compile to nothing after inlining, which
/// is how the "baseline" and "reachability-only" measurement configurations
/// of the paper are realized without separate binaries.
pub trait Observer {
    /// The program begins: `root` is the top-level function instance and
    /// `first_strand` its first strand.
    fn on_program_start(&mut self, root: FunctionId, first_strand: StrandId) {
        let _ = (root, first_strand);
    }

    /// `strand`, belonging to `function`, begins executing.
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        let _ = (strand, function);
    }

    /// A `spawn` construct was reached. Emitted before the child executes.
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        let _ = ev;
    }

    /// A `create_fut` construct was reached. Emitted before the future task
    /// executes (eager evaluation).
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        let _ = ev;
    }

    /// `function` returned; `last_strand` is its final strand.
    fn on_return(&mut self, function: FunctionId, last_strand: StrandId) {
        let _ = (function, last_strand);
    }

    /// One binary join of a `sync` was reached.
    fn on_sync(&mut self, ev: &SyncEvent) {
        let _ = ev;
    }

    /// A `get_fut` operation was reached.
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        let _ = ev;
    }

    /// `strand` read `size` bytes starting at `addr`.
    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        let _ = (strand, addr, size);
    }

    /// `strand` wrote `size` bytes starting at `addr`.
    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        let _ = (strand, addr, size);
    }

    /// The program finished; `last_strand` is the final strand of the root
    /// function.
    fn on_program_end(&mut self, last_strand: StrandId) {
        let _ = last_strand;
    }
}

/// An observer that ignores every event. Used for the paper's *baseline*
/// configuration: the executor still runs the program but no detection state
/// is maintained.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Fans the event stream out to two observers (`first`, then `second`).
///
/// Useful for running a recorder and a detector over the same execution, or
/// for chaining more than two observers by nesting.
#[derive(Debug, Default)]
pub struct MultiObserver<A, B> {
    /// First observer; receives every event before `second`.
    pub first: A,
    /// Second observer.
    pub second: B,
}

impl<A, B> MultiObserver<A, B> {
    /// Creates a fan-out observer.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }

    /// Consumes the fan-out and returns both observers.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Observer, B: Observer> Observer for MultiObserver<A, B> {
    fn on_program_start(&mut self, root: FunctionId, first_strand: StrandId) {
        self.first.on_program_start(root, first_strand);
        self.second.on_program_start(root, first_strand);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.first.on_strand_start(strand, function);
        self.second.on_strand_start(strand, function);
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.first.on_spawn(ev);
        self.second.on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.first.on_create_future(ev);
        self.second.on_create_future(ev);
    }
    fn on_return(&mut self, function: FunctionId, last_strand: StrandId) {
        self.first.on_return(function, last_strand);
        self.second.on_return(function, last_strand);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.first.on_sync(ev);
        self.second.on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.first.on_get_future(ev);
        self.second.on_get_future(ev);
    }
    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.first.on_read(strand, addr, size);
        self.second.on_read(strand, addr, size);
    }
    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.first.on_write(strand, addr, size);
        self.second.on_write(strand, addr, size);
    }
    fn on_program_end(&mut self, last_strand: StrandId) {
        self.first.on_program_end(last_strand);
        self.second.on_program_end(last_strand);
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_program_start(&mut self, root: FunctionId, first_strand: StrandId) {
        (**self).on_program_start(root, first_strand);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        (**self).on_strand_start(strand, function);
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        (**self).on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        (**self).on_create_future(ev);
    }
    fn on_return(&mut self, function: FunctionId, last_strand: StrandId) {
        (**self).on_return(function, last_strand);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        (**self).on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        (**self).on_get_future(ev);
    }
    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        (**self).on_read(strand, addr, size);
    }
    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        (**self).on_write(strand, addr, size);
    }
    fn on_program_end(&mut self, last_strand: StrandId) {
        (**self).on_program_end(last_strand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        strands: usize,
        reads: usize,
    }
    impl Observer for Counter {
        fn on_strand_start(&mut self, _s: StrandId, _f: FunctionId) {
            self.strands += 1;
        }
        fn on_read(&mut self, _s: StrandId, _a: MemAddr, _n: usize) {
            self.reads += 1;
        }
    }

    #[test]
    fn multi_observer_fans_out() {
        let mut obs = MultiObserver::new(Counter::default(), Counter::default());
        obs.on_strand_start(StrandId(0), FunctionId(0));
        obs.on_read(StrandId(0), MemAddr(0), 4);
        obs.on_read(StrandId(0), MemAddr(4), 4);
        let (a, b) = obs.into_inner();
        assert_eq!(a.strands, 1);
        assert_eq!(b.strands, 1);
        assert_eq!(a.reads, 2);
        assert_eq!(b.reads, 2);
    }

    #[test]
    fn null_observer_accepts_all_events() {
        let mut n = NullObserver;
        n.on_program_start(FunctionId(0), StrandId(0));
        n.on_spawn(&SpawnEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        n.on_program_end(StrandId(2));
    }

    #[test]
    fn mut_ref_observer_delegates() {
        let mut c = Counter::default();
        {
            let r = &mut c;
            r.on_strand_start(StrandId(1), FunctionId(0));
        }
        assert_eq!(c.strands, 1);
    }
}
