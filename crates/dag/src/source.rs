//! Streaming event sources: one abstraction over "where do trace events
//! come from".
//!
//! A detection session consumes a canonical serial-DF event stream, but that
//! stream arrives in three shapes: a complete recorded [`Trace`], a sequence
//! of appended chunks (a stored trace growing on disk, or a client pushing
//! increments over a wire), and the live buffer of a recorder observing a
//! program as it runs. [`EventSource`] unifies them behind one pull
//! operation — [`take_events`](EventSource::take_events) — so a session can
//! `ingest_from` any of them without caring which one it was handed.
//!
//! Sources are *draining*: taken events are owned by the consumer and are
//! gone from the source, which is what keeps a long-lived session's memory
//! bounded by the trace itself rather than by trace-plus-source copies.

use crate::trace::{Trace, TraceEvent};
use std::collections::VecDeque;

/// A pull-based supplier of canonical trace events.
///
/// Implementations hand over events in stream order and never re-deliver an
/// event. An empty return means the source has nothing *right now*; live
/// sources (a recorder mid-run) may produce more events later, finite
/// sources (a [`Trace`], a [`ChunkedEvents`] queue) are exhausted.
pub trait EventSource {
    /// Removes and returns the events accumulated since the last take, in
    /// stream order. Returns an empty vector when nothing is pending.
    fn take_events(&mut self) -> Vec<TraceEvent>;
}

/// A whole recorded trace is a one-chunk source: the first take returns
/// every event, later takes return nothing.
impl EventSource for Trace {
    fn take_events(&mut self) -> Vec<TraceEvent> {
        Trace::take_events(self)
    }
}

/// A bare event vector is a one-chunk source (the in-memory form of one
/// append).
impl EventSource for Vec<TraceEvent> {
    fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(self)
    }
}

/// A queue of pre-split chunks — the [`EventSource`] form of a sequence of
/// appends, preserving the chunk boundaries the producer chose.
///
/// ```
/// use futurerd_dag::source::{ChunkedEvents, EventSource};
/// use futurerd_dag::trace::TraceEvent;
/// use futurerd_dag::{FunctionId, StrandId};
///
/// let mut chunks = ChunkedEvents::new();
/// chunks.push_chunk(vec![TraceEvent::ProgramStart {
///     root: FunctionId(0),
///     first: StrandId(0),
/// }]);
/// chunks.push_chunk(vec![TraceEvent::StrandStart {
///     strand: StrandId(0),
///     function: FunctionId(0),
/// }]);
/// assert_eq!(chunks.take_events().len(), 1);
/// assert_eq!(chunks.take_events().len(), 1);
/// assert!(chunks.take_events().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ChunkedEvents {
    chunks: VecDeque<Vec<TraceEvent>>,
}

impl ChunkedEvents {
    /// An empty chunk queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one chunk of events (kept as its own take unit).
    pub fn push_chunk(&mut self, chunk: Vec<TraceEvent>) {
        if !chunk.is_empty() {
            self.chunks.push_back(chunk);
        }
    }

    /// True when no chunks are pending.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Number of pending chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }
}

impl EventSource for ChunkedEvents {
    fn take_events(&mut self) -> Vec<TraceEvent> {
        self.chunks.pop_front().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionId, StrandId};

    fn tiny_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root: FunctionId(0),
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: FunctionId(0),
        });
        t.push(TraceEvent::Return {
            function: FunctionId(0),
            last: StrandId(0),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(0) });
        t
    }

    #[test]
    fn trace_drains_in_one_chunk() {
        let mut t = tiny_trace();
        let n = t.len();
        let taken = EventSource::take_events(&mut t);
        assert_eq!(taken.len(), n);
        assert!(t.is_empty());
        assert!(EventSource::take_events(&mut t).is_empty());
    }

    #[test]
    fn chunked_source_preserves_boundaries_and_order() {
        let events = tiny_trace().take_events();
        let mut chunks = ChunkedEvents::new();
        chunks.push_chunk(events[..2].to_vec());
        chunks.push_chunk(Vec::new()); // empty chunks are dropped
        chunks.push_chunk(events[2..].to_vec());
        assert_eq!(chunks.len(), 2);
        let mut collected = Vec::new();
        loop {
            let chunk = chunks.take_events();
            if chunk.is_empty() {
                break;
            }
            collected.extend(chunk);
        }
        assert_eq!(collected, events);
        assert!(chunks.is_empty());
    }

    #[test]
    fn vec_source_drains_once() {
        let mut events = tiny_trace().take_events();
        assert_eq!(events.take_events().len(), 4);
        assert!(events.take_events().is_empty());
    }
}
