//! Computation-dag model for task-parallel programs with futures.
//!
//! This crate provides the shared vocabulary used throughout `futurerd-rs`:
//!
//! * [`ids`] — strand, function-instance and memory-address identifiers.
//! * [`events`] — the [`Observer`] trait describing the
//!   instrumentation event stream produced by a sequential depth-first eager
//!   execution of a program that uses `spawn`/`sync`/`create_fut`/`get_fut`.
//!   The race detectors in `futurerd-core` consume this stream; the executor
//!   in `futurerd-runtime` produces it.
//! * [`graph`] — an explicit computation dag (strands + typed edges), as used
//!   for testing, statistics and visualization. The detectors never need the
//!   explicit dag; it exists so that correctness can be checked against a
//!   ground-truth [`reachability`] oracle.
//! * [`reachability`] — ground-truth reachability over an explicit dag
//!   (transitive closure with bitsets) used as the specification in
//!   differential and property-based tests.
//! * [`record`] — an [`Observer`] that records the event
//!   stream into an explicit [`Dag`].
//! * [`stats`] — work/span and per-construct statistics of a dag.
//! * [`dot`] — Graphviz export.
//! * [`genprog`] — a random-program generator (structured and general
//!   futures) used for property-based differential testing of the detectors.
//! * [`trace`] — a persistent, serializable form of the event stream
//!   ([`Trace`] / [`TraceEvent`]) with a compact binary codec and a
//!   canonical serial-DF ordering validator; recorded once, a trace can be
//!   replayed through any observer (see `futurerd-core::replay`).
//!
//! The model follows Section 2 of the paper: a program execution is a dag of
//! *strands* (maximal instruction sequences without parallel control)
//! connected by *continue*, *spawn*, *join*, *create* and *get* edges.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dot;
pub mod events;
pub mod genprog;
pub mod graph;
pub mod ids;
pub mod reachability;
pub mod record;
pub mod source;
pub mod stats;
pub mod trace;

pub use events::{
    CreateFutureEvent, GetFutureEvent, MultiObserver, NullObserver, Observer, SpawnEvent, SyncEvent,
};
pub use graph::{Dag, EdgeKind};
pub use ids::{FunctionId, MemAddr, StrandId};
pub use reachability::ReachabilityOracle;
pub use record::DagRecorder;
pub use source::{ChunkedEvents, EventSource};
pub use trace::{PrefixValidator, Trace, TraceCounts, TraceError, TraceEvent};
