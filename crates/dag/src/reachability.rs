//! Ground-truth reachability over an explicit computation dag.
//!
//! [`ReachabilityOracle`] computes the full transitive closure of a dag with
//! bit-parallel set operations. It is O(V·E/64) time and O(V²/8) bytes of
//! memory — far too expensive to use during detection (which is the point of
//! the MultiBags algorithms) but ideal as the *specification* in differential
//! and property-based tests, and as the "explicit graph" comparator
//! discussed in Section 5 of the paper.

use crate::graph::Dag;
use crate::ids::StrandId;

/// A fixed-size bitset used for closure rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a bitset able to hold `n` bits, all clear.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Returns bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| (w >> (i % 64)) & 1 == 1)
            .unwrap_or(false)
    }

    /// Ors another bitset into this one. Both must have the same capacity.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if (w >> b) & 1 == 1 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// Transitive-closure reachability oracle over a [`Dag`].
///
/// `precedes(u, v)` answers whether there is a (non-empty or empty) directed
/// path from `u` to `v`; [`ReachabilityOracle::strictly_precedes`] excludes
/// the reflexive case. Two strands are *logically parallel* when neither
/// precedes the other.
#[derive(Debug, Clone)]
pub struct ReachabilityOracle {
    /// `pred[v]` = set of strands `u != v` with a path `u -> v`.
    pred: Vec<BitSet>,
}

impl ReachabilityOracle {
    /// Builds the oracle from a dag by one pass in topological order.
    pub fn from_dag(dag: &Dag) -> Self {
        let n = dag.num_strands();
        let mut pred: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for v in dag.topological_order() {
            // Collect predecessors first to avoid borrowing issues.
            let incoming: Vec<StrandId> = dag.predecessors(v).iter().map(|&(u, _)| u).collect();
            for u in incoming {
                // pred[v] |= pred[u] ∪ {u}
                let row = pred[u.index()].clone();
                pred[v.index()].union_with(&row);
                pred[v.index()].set(u.index());
            }
        }
        Self { pred }
    }

    /// Number of strands covered by the oracle.
    pub fn len(&self) -> usize {
        self.pred.len()
    }

    /// True when the oracle covers no strands.
    pub fn is_empty(&self) -> bool {
        self.pred.is_empty()
    }

    /// True iff `u == v` or there is a directed path from `u` to `v`
    /// (the paper's `u ≺ v` is the strict version combined with execution
    /// order; race queries always compare distinct strands).
    pub fn precedes(&self, u: StrandId, v: StrandId) -> bool {
        u == v || self.strictly_precedes(u, v)
    }

    /// True iff there is a non-empty directed path from `u` to `v`.
    pub fn strictly_precedes(&self, u: StrandId, v: StrandId) -> bool {
        self.pred
            .get(v.index())
            .map(|s| s.get(u.index()))
            .unwrap_or(false)
    }

    /// True iff neither strand precedes the other (they are logically
    /// parallel).
    pub fn parallel(&self, u: StrandId, v: StrandId) -> bool {
        u != v && !self.strictly_precedes(u, v) && !self.strictly_precedes(v, u)
    }

    /// Number of ordered pairs `(u, v)` with `u` strictly preceding `v`.
    pub fn num_ordered_pairs(&self) -> usize {
        self.pred.iter().map(|s| s.count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::ids::FunctionId;

    fn chain(n: u32) -> Dag {
        let mut d = Dag::new();
        for i in 0..n {
            d.add_strand(StrandId(i), FunctionId(0));
            if i > 0 {
                d.add_edge(StrandId(i - 1), StrandId(i), EdgeKind::Continue);
            }
        }
        d
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut c = BitSet::new(130);
        c.set(3);
        c.union_with(&b);
        assert_eq!(c.count(), 4);
    }

    #[test]
    fn chain_reachability() {
        let d = chain(5);
        let o = ReachabilityOracle::from_dag(&d);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(
                    o.strictly_precedes(StrandId(i), StrandId(j)),
                    i < j,
                    "({i},{j})"
                );
            }
        }
        assert_eq!(o.num_ordered_pairs(), 10);
    }

    #[test]
    fn diamond_parallel_branches() {
        // 0 -> 1 -> 3 ; 0 -> 2 -> 3
        let mut d = Dag::new();
        for i in 0..4 {
            d.add_strand(StrandId(i), FunctionId(0));
        }
        d.add_edge(StrandId(0), StrandId(1), EdgeKind::Spawn);
        d.add_edge(StrandId(0), StrandId(2), EdgeKind::Continue);
        d.add_edge(StrandId(1), StrandId(3), EdgeKind::Join);
        d.add_edge(StrandId(2), StrandId(3), EdgeKind::Continue);
        let o = ReachabilityOracle::from_dag(&d);
        assert!(o.parallel(StrandId(1), StrandId(2)));
        assert!(o.strictly_precedes(StrandId(0), StrandId(3)));
        assert!(o.strictly_precedes(StrandId(1), StrandId(3)));
        assert!(!o.strictly_precedes(StrandId(3), StrandId(0)));
        assert!(o.precedes(StrandId(2), StrandId(2)));
        assert!(!o.strictly_precedes(StrandId(2), StrandId(2)));
    }

    #[test]
    fn cross_sp_dag_reachability_via_future_edges() {
        // Two "SP dags": {0,1} and {2,3}, connected 1 -create-> 2 and
        // 3 -get-> 4 where 4 is a getter strand in the first dag.
        let mut d = Dag::new();
        for i in 0..5 {
            d.add_strand(
                StrandId(i),
                FunctionId(if (2..=3).contains(&i) { 1 } else { 0 }),
            );
        }
        d.add_edge(StrandId(0), StrandId(1), EdgeKind::Continue);
        d.add_edge(StrandId(1), StrandId(2), EdgeKind::Create);
        d.add_edge(StrandId(2), StrandId(3), EdgeKind::Continue);
        d.add_edge(StrandId(1), StrandId(4), EdgeKind::Continue);
        d.add_edge(StrandId(3), StrandId(4), EdgeKind::Get);
        let o = ReachabilityOracle::from_dag(&d);
        assert!(o.strictly_precedes(StrandId(0), StrandId(3)));
        assert!(o.strictly_precedes(StrandId(2), StrandId(4)));
        assert!(
            o.parallel(StrandId(2), StrandId(1)) || o.strictly_precedes(StrandId(1), StrandId(2))
        );
        assert!(o.strictly_precedes(StrandId(1), StrandId(2)));
    }
}
