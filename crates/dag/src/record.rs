//! An [`Observer`] that records the execution event stream into an explicit
//! [`Dag`], plus the execution order and memory-access counts.
//!
//! The recorder is the bridge between the on-the-fly detectors and the
//! ground-truth oracle: tests run a program once with a
//! [`MultiObserver`](crate::events::MultiObserver) combining a recorder and a
//! detector, then validate every answer the detector gave against
//! [`ReachabilityOracle`](crate::reachability::ReachabilityOracle) built from
//! the recorded dag.

use crate::events::{CreateFutureEvent, GetFutureEvent, Observer, SpawnEvent, SyncEvent};
use crate::graph::{Dag, EdgeKind};
use crate::ids::{FunctionId, MemAddr, StrandId};

/// Records execution events into an explicit computation dag.
#[derive(Debug, Default)]
pub struct DagRecorder {
    dag: Dag,
    /// Strands in the order they began executing.
    execution_order: Vec<StrandId>,
    /// Number of read events observed.
    pub reads: u64,
    /// Number of write events observed.
    pub writes: u64,
    /// Last strand of the root function, filled in at program end.
    pub final_strand: Option<StrandId>,
}

impl DagRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the recorded dag.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Consumes the recorder and returns the dag.
    pub fn into_dag(self) -> Dag {
        self.dag
    }

    /// The strands in the order they began executing.
    pub fn execution_order(&self) -> &[StrandId] {
        &self.execution_order
    }

    /// Total memory accesses observed.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl Observer for DagRecorder {
    fn on_program_start(&mut self, root: FunctionId, first_strand: StrandId) {
        self.dag.add_strand(first_strand, root);
    }

    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.dag.add_strand(strand, function);
        self.execution_order.push(strand);
    }

    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.dag.add_strand(ev.child_first_strand, ev.child);
        self.dag.add_strand(ev.cont_strand, ev.parent);
        self.dag
            .add_edge(ev.fork_strand, ev.child_first_strand, EdgeKind::Spawn);
        self.dag
            .add_edge(ev.fork_strand, ev.cont_strand, EdgeKind::Continue);
    }

    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.dag.add_strand(ev.child_first_strand, ev.child);
        self.dag.add_strand(ev.cont_strand, ev.parent);
        self.dag
            .add_edge(ev.creator_strand, ev.child_first_strand, EdgeKind::Create);
        self.dag
            .add_edge(ev.creator_strand, ev.cont_strand, EdgeKind::Continue);
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        self.dag.add_strand(ev.join_strand, ev.parent);
        self.dag
            .add_edge(ev.child_last_strand, ev.join_strand, EdgeKind::Join);
        self.dag
            .add_edge(ev.pre_join_strand, ev.join_strand, EdgeKind::Continue);
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.dag.add_strand(ev.getter_strand, ev.parent);
        self.dag
            .add_edge(ev.future_last_strand, ev.getter_strand, EdgeKind::Get);
        self.dag
            .add_edge(ev.pre_get_strand, ev.getter_strand, EdgeKind::Continue);
    }

    fn on_read(&mut self, _strand: StrandId, _addr: MemAddr, _size: usize) {
        self.reads += 1;
    }

    fn on_write(&mut self, _strand: StrandId, _addr: MemAddr, _size: usize) {
        self.writes += 1;
    }

    fn on_program_end(&mut self, last_strand: StrandId) {
        self.final_strand = Some(last_strand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ForkInfo;
    use crate::reachability::ReachabilityOracle;

    /// Hand-emit the event stream of: root spawns a child, both access
    /// memory, root syncs.
    fn record_simple_fork_join() -> DagRecorder {
        let mut r = DagRecorder::new();
        let root = FunctionId(0);
        let child = FunctionId(1);
        let s0 = StrandId(0);
        let s_child = StrandId(1);
        let s_cont = StrandId(2);
        let s_join = StrandId(3);

        r.on_program_start(root, s0);
        r.on_strand_start(s0, root);
        r.on_spawn(&SpawnEvent {
            parent: root,
            child,
            fork_strand: s0,
            cont_strand: s_cont,
            child_first_strand: s_child,
        });
        r.on_strand_start(s_child, child);
        r.on_write(s_child, MemAddr(0), 4);
        r.on_return(child, s_child);
        r.on_strand_start(s_cont, root);
        r.on_read(s_cont, MemAddr(0), 4);
        r.on_sync(&SyncEvent {
            parent: root,
            child,
            pre_join_strand: s_cont,
            join_strand: s_join,
            child_last_strand: s_child,
            fork: ForkInfo {
                pre_fork_strand: s0,
                child_first_strand: s_child,
                cont_strand: s_cont,
            },
        });
        r.on_strand_start(s_join, root);
        r.on_program_end(s_join);
        r
    }

    #[test]
    fn records_strands_edges_and_accesses() {
        let r = record_simple_fork_join();
        let dag = r.dag();
        assert_eq!(dag.num_strands(), 4);
        assert_eq!(dag.num_edges(), 4);
        assert_eq!(r.reads, 1);
        assert_eq!(r.writes, 1);
        assert_eq!(r.accesses(), 2);
        assert_eq!(r.final_strand, Some(StrandId(3)));
        assert_eq!(
            r.execution_order(),
            &[StrandId(0), StrandId(1), StrandId(2), StrandId(3)]
        );
    }

    #[test]
    fn recorded_dag_has_expected_reachability() {
        let r = record_simple_fork_join();
        let oracle = ReachabilityOracle::from_dag(r.dag());
        // Child and continuation are parallel.
        assert!(oracle.parallel(StrandId(1), StrandId(2)));
        // Everything precedes the join strand.
        for i in 0..3u32 {
            assert!(oracle.strictly_precedes(StrandId(i), StrandId(3)));
        }
    }

    #[test]
    fn recorded_dag_is_consistent() {
        let r = record_simple_fork_join();
        assert!(r.dag().check_consistency().is_empty());
    }
}
