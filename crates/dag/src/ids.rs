//! Identifier newtypes shared across the futurerd crates.

use serde::{Deserialize, Serialize};

/// Identifier of a *strand*: a maximal sequence of instructions containing no
/// parallel control. Strand ids are dense and allocated by the sequential
/// depth-first eager executor at the parallel construct that creates the
/// strand. Every edge of the computation dag points from a lower id to a
/// higher id (ids are a topological order), but ids are not exactly the
/// order in which strands *begin executing*: the continuation of a
/// spawn/create is allocated at the fork, before the child's descendants,
/// even though it executes after them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StrandId(pub u32);

impl StrandId {
    /// Returns the strand id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StrandId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a *function instance* (a frame): either the root of the
/// program, a spawned child, or a future task. Dense, allocated in execution
/// order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FunctionId(pub u32);

impl FunctionId {
    /// Returns the function id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An abstract memory address as seen by the detector.
///
/// The instrumented memory wrappers in `futurerd-core` allocate disjoint
/// address ranges from a per-execution bump allocator, so addresses are
/// stable, unique per logical location, and independent of where the Rust
/// allocator happens to place the backing storage. The access history tracks
/// locations at [`GRANULARITY`](MemAddr::GRANULARITY)-byte granularity, as in
/// the paper's FutureRD implementation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MemAddr(pub u64);

impl MemAddr {
    /// Access-history granularity in bytes (four bytes, as in FutureRD).
    pub const GRANULARITY: u64 = 4;

    /// Returns the raw address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the granule index of this address (address / 4).
    #[inline]
    pub fn granule(self) -> u64 {
        self.0 / Self::GRANULARITY
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> MemAddr {
        MemAddr(self.0 + bytes)
    }

    /// Iterates over the granules covered by an access of `size` bytes
    /// starting at this address.
    pub fn granules(self, size: usize) -> impl Iterator<Item = u64> {
        let first = self.granule();
        let last = if size == 0 {
            first
        } else {
            (self.0 + size as u64 - 1) / Self::GRANULARITY
        };
        first..=last
    }
}

impl std::fmt::Display for MemAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strand_and_function_ids_are_ordered() {
        assert!(StrandId(1) < StrandId(2));
        assert!(FunctionId(0) < FunctionId(5));
        assert_eq!(StrandId(7).index(), 7);
        assert_eq!(FunctionId(7).index(), 7);
    }

    #[test]
    fn display_forms() {
        assert_eq!(StrandId(3).to_string(), "s3");
        assert_eq!(FunctionId(4).to_string(), "f4");
        assert_eq!(MemAddr(0x10).to_string(), "0x10");
    }

    #[test]
    fn granules_of_single_word_access() {
        let a = MemAddr(8);
        let g: Vec<u64> = a.granules(4).collect();
        assert_eq!(g, vec![2]);
    }

    #[test]
    fn granules_of_wide_access_cover_range() {
        let a = MemAddr(6);
        // bytes 6..14 → granules 1, 2, 3
        let g: Vec<u64> = a.granules(8).collect();
        assert_eq!(g, vec![1, 2, 3]);
    }

    #[test]
    fn granules_of_empty_access() {
        let a = MemAddr(12);
        let g: Vec<u64> = a.granules(0).collect();
        assert_eq!(g, vec![3]);
    }

    #[test]
    fn offset_moves_address() {
        assert_eq!(MemAddr(4).offset(12), MemAddr(16));
    }
}
