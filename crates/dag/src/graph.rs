//! An explicit computation dag: strands connected by typed edges.
//!
//! The race-detection algorithms never materialize this graph (that is the
//! point of the paper), but the explicit representation is the ground truth
//! for differential tests, statistics and visualization.

use crate::ids::{FunctionId, StrandId};
use serde::{Deserialize, Serialize};

/// The kind of a dag edge, following Section 5 of the paper.
///
/// For *structured* futures (Section 4) the paper collapses `Spawn`/`Create`
/// into "spawn edges" and `Join`/`Get` into "join edges"; helpers
/// [`EdgeKind::is_spawn_like`] and [`EdgeKind::is_join_like`] provide that
/// view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Edge between consecutive strands of the same function instance.
    Continue,
    /// Edge from a fork (spawn) node to the first strand of the spawned
    /// child.
    Spawn,
    /// Edge from the last strand of a spawned child to the corresponding
    /// sync node of its parent.
    Join,
    /// Edge from a creator node (ends with `create_fut`) to the first strand
    /// of the future task.
    Create,
    /// Edge from the last strand of a future task to a getter node.
    Get,
}

impl EdgeKind {
    /// True for edges that the structured-futures model treats as "spawn"
    /// edges: [`EdgeKind::Spawn`], [`EdgeKind::Create`] and
    /// [`EdgeKind::Continue`] are the edges a *spawn predecessor* path may
    /// use (spawn + continue); this helper returns true only for the two
    /// fork-like kinds.
    pub fn is_spawn_like(self) -> bool {
        matches!(self, EdgeKind::Spawn | EdgeKind::Create)
    }

    /// True for edges that the structured-futures model treats as "join"
    /// edges ([`EdgeKind::Join`] and [`EdgeKind::Get`]).
    pub fn is_join_like(self) -> bool {
        matches!(self, EdgeKind::Join | EdgeKind::Get)
    }

    /// True for edges that stay within a single series-parallel dag
    /// (everything except [`EdgeKind::Create`] and [`EdgeKind::Get`], which
    /// are the "non-SP" edges of Section 2).
    pub fn is_sp(self) -> bool {
        !matches!(self, EdgeKind::Create | EdgeKind::Get)
    }
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EdgeKind::Continue => "continue",
            EdgeKind::Spawn => "spawn",
            EdgeKind::Join => "join",
            EdgeKind::Create => "create",
            EdgeKind::Get => "get",
        };
        f.write_str(s)
    }
}

/// Per-strand information stored in the dag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrandNode {
    /// The function instance this strand belongs to.
    pub function: FunctionId,
}

/// A directed edge of the computation dag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source strand.
    pub from: StrandId,
    /// Destination strand.
    pub to: StrandId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// An explicit computation dag over strands.
///
/// Strand ids are dense indexes; adding a strand with id `k` implicitly makes
/// room for ids `0..=k`. Unregistered placeholder strands belong to
/// `FunctionId(u32::MAX)` until registered.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dag {
    strands: Vec<StrandNode>,
    registered: Vec<bool>,
    out_edges: Vec<Vec<(StrandId, EdgeKind)>>,
    in_edges: Vec<Vec<(StrandId, EdgeKind)>>,
    edges: Vec<Edge>,
    num_functions: u32,
}

impl Dag {
    /// Creates an empty dag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of strands.
    pub fn num_strands(&self) -> usize {
        self.strands.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct function instances seen.
    pub fn num_functions(&self) -> usize {
        self.num_functions as usize
    }

    /// True if the dag has no strands.
    pub fn is_empty(&self) -> bool {
        self.strands.is_empty()
    }

    fn grow_to(&mut self, strand: StrandId) {
        let need = strand.index() + 1;
        if self.strands.len() < need {
            self.strands.resize(
                need,
                StrandNode {
                    function: FunctionId(u32::MAX),
                },
            );
            self.registered.resize(need, false);
            self.out_edges.resize(need, Vec::new());
            self.in_edges.resize(need, Vec::new());
        }
    }

    /// Registers `strand` as belonging to `function`. Registering the same
    /// strand twice with a different function panics.
    pub fn add_strand(&mut self, strand: StrandId, function: FunctionId) {
        self.grow_to(strand);
        let node = &mut self.strands[strand.index()];
        if self.registered[strand.index()] {
            assert_eq!(
                node.function, function,
                "strand {strand} registered twice with different functions"
            );
            return;
        }
        node.function = function;
        self.registered[strand.index()] = true;
        self.num_functions = self.num_functions.max(function.0 + 1);
    }

    /// True if `strand` has been registered with [`Dag::add_strand`].
    pub fn contains_strand(&self, strand: StrandId) -> bool {
        strand.index() < self.registered.len() && self.registered[strand.index()]
    }

    /// Returns the function a strand belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the strand has not been registered.
    pub fn function_of(&self, strand: StrandId) -> FunctionId {
        assert!(self.contains_strand(strand), "unknown strand {strand}");
        self.strands[strand.index()].function
    }

    /// Adds an edge. Both endpoints are implicitly grown into the strand
    /// table (they may be registered later).
    pub fn add_edge(&mut self, from: StrandId, to: StrandId, kind: EdgeKind) {
        self.grow_to(from);
        self.grow_to(to);
        self.out_edges[from.index()].push((to, kind));
        self.in_edges[to.index()].push((from, kind));
        self.edges.push(Edge { from, to, kind });
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Iterates over all strand ids.
    pub fn strands(&self) -> impl Iterator<Item = StrandId> + '_ {
        (0..self.strands.len() as u32).map(StrandId)
    }

    /// Outgoing edges of a strand.
    pub fn successors(&self, strand: StrandId) -> &[(StrandId, EdgeKind)] {
        self.out_edges
            .get(strand.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Incoming edges of a strand.
    pub fn predecessors(&self, strand: StrandId) -> &[(StrandId, EdgeKind)] {
        self.in_edges
            .get(strand.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Strands with no incoming edges.
    pub fn sources(&self) -> Vec<StrandId> {
        self.strands()
            .filter(|s| self.predecessors(*s).is_empty())
            .collect()
    }

    /// Strands with no outgoing edges.
    pub fn sinks(&self) -> Vec<StrandId> {
        self.strands()
            .filter(|s| self.successors(*s).is_empty())
            .collect()
    }

    /// All strands belonging to `function`, in id order.
    pub fn strands_of(&self, function: FunctionId) -> Vec<StrandId> {
        self.strands()
            .filter(|s| self.contains_strand(*s) && self.function_of(*s) == function)
            .collect()
    }

    /// Counts edges of each kind: `(continue, spawn, join, create, get)`.
    pub fn edge_kind_counts(&self) -> EdgeKindCounts {
        let mut c = EdgeKindCounts::default();
        for e in &self.edges {
            match e.kind {
                EdgeKind::Continue => c.cont += 1,
                EdgeKind::Spawn => c.spawn += 1,
                EdgeKind::Join => c.join += 1,
                EdgeKind::Create => c.create += 1,
                EdgeKind::Get => c.get += 1,
            }
        }
        c
    }

    /// Returns a topological order of all strands.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (which cannot happen for graphs
    /// produced by the recorder, but may for hand-built graphs).
    pub fn topological_order(&self) -> Vec<StrandId> {
        let n = self.strands.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.in_edges[i].len()).collect();
        let mut queue: Vec<StrandId> = (0..n as u32)
            .map(StrandId)
            .filter(|s| indegree[s.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &(v, _) in &self.out_edges[u.index()] {
                indegree[v.index()] -= 1;
                if indegree[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(order.len(), n, "computation graph contains a cycle");
        order
    }

    /// Checks the structural invariants of a recorded computation dag and
    /// returns a list of violations (empty when consistent): every strand is
    /// registered, every strand has at most two incoming edges (a join/getter
    /// strand joins exactly one child or future), and at most two outgoing
    /// edges other than `Get` edges (a multi-touch future's last strand has
    /// one `Get` edge per touch).
    pub fn check_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for s in self.strands() {
            if !self.contains_strand(s) {
                problems.push(format!(
                    "strand {s} referenced by an edge but never registered"
                ));
            }
            if self.predecessors(s).len() > 2 {
                problems.push(format!("strand {s} has more than two incoming edges"));
            }
            let non_get_out = self
                .successors(s)
                .iter()
                .filter(|&&(_, k)| k != EdgeKind::Get)
                .count();
            if non_get_out > 2 {
                problems.push(format!(
                    "strand {s} has more than two non-get outgoing edges"
                ));
            }
        }
        problems
    }
}

/// Per-kind edge counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeKindCounts {
    /// Continue edges.
    pub cont: usize,
    /// Spawn edges.
    pub spawn: usize,
    /// Join edges.
    pub join: usize,
    /// Create (future spawn) edges.
    pub create: usize,
    /// Get (future join) edges.
    pub get: usize,
}

impl EdgeKindCounts {
    /// Number of non-series-parallel edges (create + get).
    pub fn non_sp(&self) -> usize {
        self.create + self.get
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 --spawn--> 1 --join--> 3
        // 0 --cont---> 2 --cont--> 3
        let mut d = Dag::new();
        d.add_strand(StrandId(0), FunctionId(0));
        d.add_strand(StrandId(1), FunctionId(1));
        d.add_strand(StrandId(2), FunctionId(0));
        d.add_strand(StrandId(3), FunctionId(0));
        d.add_edge(StrandId(0), StrandId(1), EdgeKind::Spawn);
        d.add_edge(StrandId(0), StrandId(2), EdgeKind::Continue);
        d.add_edge(StrandId(1), StrandId(3), EdgeKind::Join);
        d.add_edge(StrandId(2), StrandId(3), EdgeKind::Continue);
        d
    }

    #[test]
    fn basic_counts() {
        let d = diamond();
        assert_eq!(d.num_strands(), 4);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.num_functions(), 2);
        let c = d.edge_kind_counts();
        assert_eq!(c.cont, 2);
        assert_eq!(c.spawn, 1);
        assert_eq!(c.join, 1);
        assert_eq!(c.non_sp(), 0);
    }

    #[test]
    fn sources_and_sinks() {
        let d = diamond();
        assert_eq!(d.sources(), vec![StrandId(0)]);
        assert_eq!(d.sinks(), vec![StrandId(3)]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let d = diamond();
        for e in d.edges() {
            assert!(d
                .successors(e.from)
                .iter()
                .any(|&(t, k)| t == e.to && k == e.kind));
            assert!(d
                .predecessors(e.to)
                .iter()
                .any(|&(f, k)| f == e.from && k == e.kind));
        }
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; d.num_strands()];
            for (i, s) in order.iter().enumerate() {
                p[s.index()] = i;
            }
            p
        };
        for e in d.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn strands_of_function_filters() {
        let d = diamond();
        assert_eq!(
            d.strands_of(FunctionId(0)),
            vec![StrandId(0), StrandId(2), StrandId(3)]
        );
        assert_eq!(d.strands_of(FunctionId(1)), vec![StrandId(1)]);
    }

    #[test]
    fn double_registration_same_function_is_ok() {
        let mut d = diamond();
        d.add_strand(StrandId(0), FunctionId(0));
        assert_eq!(d.num_strands(), 4);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_different_function_panics() {
        let mut d = diamond();
        d.add_strand(StrandId(0), FunctionId(1));
    }

    #[test]
    fn consistency_of_wellformed_dag() {
        assert!(diamond().check_consistency().is_empty());
    }

    #[test]
    fn edge_kind_predicates() {
        assert!(EdgeKind::Spawn.is_spawn_like());
        assert!(EdgeKind::Create.is_spawn_like());
        assert!(!EdgeKind::Join.is_spawn_like());
        assert!(EdgeKind::Join.is_join_like());
        assert!(EdgeKind::Get.is_join_like());
        assert!(EdgeKind::Continue.is_sp());
        assert!(EdgeKind::Spawn.is_sp());
        assert!(!EdgeKind::Create.is_sp());
        assert!(!EdgeKind::Get.is_sp());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detection_panics() {
        let mut d = Dag::new();
        d.add_strand(StrandId(0), FunctionId(0));
        d.add_strand(StrandId(1), FunctionId(0));
        d.add_edge(StrandId(0), StrandId(1), EdgeKind::Continue);
        d.add_edge(StrandId(1), StrandId(0), EdgeKind::Continue);
        d.topological_order();
    }
}
