//! A persistent, serializable form of the execution event stream.
//!
//! The [`Observer`] callbacks of [`crate::events`] only exist for the
//! duration of one execution; a [`Trace`] reifies them as a vector of
//! [`TraceEvent`]s that can be written to disk, read back, and *replayed*
//! through any observer — in particular through the race detectors of
//! `futurerd-core`. Recording once and replaying many times decouples
//! *running* a program from *detecting* on it: the same trace can be fed to
//! MultiBags, MultiBags+, SP-Bags and the graph oracle, offline, repeatedly,
//! and (eventually) sharded across machines.
//!
//! ## The canonical serial-DF ordering invariant
//!
//! A valid trace is exactly the event sequence the sequential depth-first
//! eager executor (`futurerd-runtime::exec`) would emit for some program:
//!
//! * the stream starts with `ProgramStart` for function `f0`/strand `s0` and
//!   ends with `ProgramEnd`;
//! * every construct allocates its function and strand ids *densely, in
//!   event order* (a `Spawn` at a point where `n` strands exist names
//!   `s(n)` as the child's first strand and `s(n+1)` as the continuation);
//! * a spawned or created child runs eagerly to completion (its `Return`
//!   appears) before the parent's continuation strand starts;
//! * every memory access is attributed to the currently executing strand;
//! * `Sync` joins pending spawned children innermost-first, and every
//!   function's children are joined before its `Return` (the implicit sync).
//!
//! [`Trace::validate`] checks all of this and returns the stream's
//! [`TraceCounts`]. The detectors assume this discipline (their amortized
//! bounds depend on it), so replay entry points validate before detecting.
//!
//! ## On-disk format
//!
//! A compact binary encoding: the magic bytes `FRDTRACE`, a little-endian
//! `u32` format version, and the event count followed by the events, each an
//! opcode byte plus LEB128 varint fields. Memory accesses — which dominate
//! real traces — cost a handful of bytes each. The event types also carry
//! `serde` derives (via the vendored shim) so that swapping in the real
//! `serde` for JSON export stays a manifest-only change.
//!
//! Version 2 additionally **delta-encodes the access events**: the strand id
//! and the byte address of each `Read`/`Write` are stored as zigzag varint
//! deltas against the previous access. Accesses are overwhelmingly
//! same-strand (delta 0 → one byte) at near-sequential addresses (delta
//! ±granule → one byte), so dense access runs shrink from ~4–6 bytes to ~3
//! per event.
//!
//! Version 3 (the current writer format) adds two things behind the version
//! field:
//!
//! * **run-length encoded access bursts** — a maximal run of ≥
//!   [`MIN_ACCESS_RUN`] same-kind, same-strand, same-size accesses whose
//!   addresses advance by a constant stride (a dense sweep, a repeated
//!   granule, a strided column walk) collapses into one run event carrying
//!   the first address, the count and the stride;
//! * a **payload checksum** — a little-endian FNV-1a 64 hash of the encoded
//!   payload (event count + events) stored right after the version field, so
//!   a bit flip anywhere in the body is a typed [`TraceError::Checksum`]
//!   instead of a silent mis-decode.
//!
//! Version 1 (absolute fields) and version 2 streams remain fully readable;
//! [`Trace::write_to_versioned`] still writes them for compatibility checks
//! and size comparisons.

use crate::events::{CreateFutureEvent, ForkInfo, GetFutureEvent, Observer, SpawnEvent, SyncEvent};
use crate::ids::{FunctionId, MemAddr, StrandId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes identifying a trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"FRDTRACE";
/// Current format version (run-length encoded access bursts + checksummed
/// payload, on top of v2's delta encoding).
pub const TRACE_VERSION: u32 = 3;
/// The delta-encoded format version (no run events, no checksum); still
/// readable and writable via [`Trace::write_to_versioned`].
pub const TRACE_VERSION_V2: u32 = 2;
/// The original format version (absolute fields everywhere); still readable
/// and writable via [`Trace::write_to_versioned`].
pub const TRACE_VERSION_V1: u32 = 1;

/// Minimum number of accesses collapsed into one v3 run event. Shorter
/// bursts are written as plain access events (a run header would not pay for
/// itself).
pub const MIN_ACCESS_RUN: usize = 3;

/// One event of the serialized execution stream — the persistent counterpart
/// of one [`Observer`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The program begins; `root` is the top-level function, `first` its
    /// first strand.
    ProgramStart {
        /// The root function instance.
        root: FunctionId,
        /// The root's first strand.
        first: StrandId,
    },
    /// `strand`, belonging to `function`, begins executing.
    StrandStart {
        /// The strand that starts.
        strand: StrandId,
        /// The function it belongs to.
        function: FunctionId,
    },
    /// A `spawn` construct.
    Spawn(SpawnEvent),
    /// A `create_fut` construct.
    CreateFuture(CreateFutureEvent),
    /// `function` returned; `last` is its final strand.
    Return {
        /// The returning function instance.
        function: FunctionId,
        /// Its final strand.
        last: StrandId,
    },
    /// One binary `sync` join.
    Sync(SyncEvent),
    /// A `get_fut` operation.
    GetFuture(GetFutureEvent),
    /// `strand` read `size` bytes at `addr`.
    Read {
        /// The reading strand.
        strand: StrandId,
        /// Base address of the access.
        addr: MemAddr,
        /// Access width in bytes.
        size: u32,
    },
    /// `strand` wrote `size` bytes at `addr`.
    Write {
        /// The writing strand.
        strand: StrandId,
        /// Base address of the access.
        addr: MemAddr,
        /// Access width in bytes.
        size: u32,
    },
    /// The program finished; `last` is the root's final strand.
    ProgramEnd {
        /// The final strand of the root function.
        last: StrandId,
    },
}

/// Errors produced while encoding, decoding or validating a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error.
    Io(io::Error),
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The input's format version is not supported.
    UnsupportedVersion(u32),
    /// The input ended in the middle of an event.
    Truncated,
    /// The input continues past the declared event count (corrupt or
    /// concatenated file).
    TrailingData,
    /// The trace is well-formed but the selected consumer cannot process it
    /// (e.g. SP-Bags on a stream that contains future constructs).
    Unsupported {
        /// Why the consumer rejects this trace.
        message: String,
    },
    /// An unknown event opcode.
    BadOpcode(u8),
    /// A varint field does not fit the expected integer width.
    FieldOverflow,
    /// The payload checksum of a v3 stream does not match its contents (a
    /// bit flip or torn write somewhere in the body).
    Checksum {
        /// The checksum stored in the header.
        expected: u64,
        /// The checksum computed over the decoded payload.
        found: u64,
    },
    /// The stream violates the canonical serial-DF ordering invariant.
    Invariant {
        /// Index of the offending event.
        index: usize,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a futurerd trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (expected {TRACE_VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace truncated mid-event"),
            TraceError::TrailingData => {
                write!(f, "trace continues past its declared event count")
            }
            TraceError::Unsupported { message } => {
                write!(f, "trace not supported by this consumer: {message}")
            }
            TraceError::BadOpcode(op) => write!(f, "unknown event opcode {op:#x}"),
            TraceError::FieldOverflow => write!(f, "varint field exceeds its integer width"),
            TraceError::Checksum { expected, found } => write!(
                f,
                "payload checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            TraceError::Invariant { index, message } => {
                write!(
                    f,
                    "serial-DF invariant violated at event {index}: {message}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Per-construct totals of a validated trace; the persistent analogue of
/// `futurerd-runtime`'s `ExecutionSummary`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCounts {
    /// Function instances (root + spawned + futures).
    pub functions: u64,
    /// Strands allocated.
    pub strands: u64,
    /// `spawn` constructs.
    pub spawns: u64,
    /// `create_fut` constructs.
    pub creates: u64,
    /// Binary sync joins.
    pub syncs: u64,
    /// `get_fut` operations (the paper's `k`).
    pub gets: u64,
    /// Read events.
    pub reads: u64,
    /// Write events.
    pub writes: u64,
}

impl TraceCounts {
    /// Total memory-access events.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total parallelism-creating constructs (the paper's `n`).
    pub fn parallel_constructs(&self) -> u64 {
        self.spawns + self.creates
    }
}

impl std::fmt::Display for TraceCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} functions, {} strands, {} spawns, {} creates, {} syncs, {} gets, {} reads, {} writes",
            self.functions,
            self.strands,
            self.spawns,
            self.creates,
            self.syncs,
            self.gets,
            self.reads,
            self.writes
        )
    }
}

/// A recorded execution event stream in canonical serial-DF order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event. Recorders use this; the canonical ordering is *not*
    /// checked here (call [`Trace::validate`] on the finished stream).
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if the trace contains any `create_fut` construct.
    pub fn has_futures(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::CreateFuture(_)))
    }

    /// True if no future is consumed more than once. Necessary but not
    /// sufficient for the *structured* regime ([`Trace::is_structured`]):
    /// a single-touch handle can still escape its creating task's scope.
    pub fn is_single_touch(&self) -> bool {
        self.events.iter().all(|e| match e {
            TraceEvent::GetFuture(ev) => ev.prior_touches == 0,
            _ => true,
        })
    }

    /// True if the trace uses futures in the *structured* regime MultiBags
    /// is sound for: every future is consumed at most once, by a `get_fut`
    /// positioned like a join within the creating task's scope.
    ///
    /// Under the canonical depth-first eager order a task's scope is its
    /// span on the call stack, so "within the creating task's scope" is
    /// checkable directly: at each `get_fut` the task that performed the
    /// `create_fut` must not have returned yet (the toucher is then the
    /// creator or one of its still-active descendants, which is exactly the
    /// handle-flows-down discipline). An upward escape — a handle returned
    /// to an ancestor and touched after its creator completed — leaves
    /// strands that precede the future stranded in never-joined P-bags, and
    /// MultiBags would report false positives.
    pub fn is_structured(&self) -> bool {
        let mut creating_task: std::collections::HashMap<FunctionId, FunctionId> =
            std::collections::HashMap::new();
        let mut returned: std::collections::HashSet<FunctionId> = std::collections::HashSet::new();
        self.events.iter().all(|e| match e {
            TraceEvent::CreateFuture(ev) => {
                creating_task.insert(ev.child, ev.parent);
                true
            }
            TraceEvent::Return { function, .. } => {
                returned.insert(*function);
                true
            }
            TraceEvent::GetFuture(ev) => {
                ev.prior_touches == 0
                    && creating_task
                        .get(&ev.future)
                        .is_some_and(|creator| !returned.contains(creator))
            }
            _ => true,
        })
    }

    /// Replays the trace through `observer`, invoking the callback matching
    /// each event in order, and returns the observer.
    pub fn replay<O: Observer>(&self, mut observer: O) -> O {
        self.replay_into(&mut observer);
        observer
    }

    /// Replays the trace through a borrowed observer.
    pub fn replay_into<O: Observer + ?Sized>(&self, observer: &mut O) {
        replay_events(&self.events, observer);
    }

    /// Serializes the trace to `writer` in the current binary format
    /// ([`TRACE_VERSION`]).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), TraceError> {
        self.write_to_versioned(writer, TRACE_VERSION)
    }

    /// Serializes the trace in an explicit format version — the current
    /// run-length + checksummed v3, the delta-encoded v2, or the legacy
    /// absolute-field v1 (for compatibility tests and size comparisons).
    /// Unknown versions are rejected with [`TraceError::UnsupportedVersion`].
    pub fn write_to_versioned<W: Write>(
        &self,
        writer: &mut W,
        version: u32,
    ) -> Result<(), TraceError> {
        if !(TRACE_VERSION_V1..=TRACE_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        writer.write_all(&TRACE_MAGIC)?;
        writer.write_all(&version.to_le_bytes())?;
        let mut codec = Codec::new(version);
        if version >= 3 {
            // The checksum precedes the payload, so v3 buffers the encoded
            // payload once; v1/v2 stream straight to the writer below.
            let mut payload = Vec::new();
            write_varint(&mut payload, self.events.len() as u64)?;
            // Collapse maximal constant-stride access bursts into run events.
            let mut i = 0;
            while i < self.events.len() {
                let run = access_run_len(&self.events, i);
                if run >= MIN_ACCESS_RUN {
                    encode_access_run(&mut payload, &self.events[i..i + run], &mut codec)?;
                    i += run;
                } else {
                    encode_event(&mut payload, &self.events[i], &mut codec)?;
                    i += 1;
                }
            }
            writer.write_all(&fnv1a64(&payload).to_le_bytes())?;
            writer.write_all(&payload)?;
        } else {
            write_varint(writer, self.events.len() as u64)?;
            for event in &self.events {
                encode_event(writer, event, &mut codec)?;
            }
        }
        Ok(())
    }

    /// Deserializes a trace from `reader` (any supported format version).
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        read_exact_or_truncated(reader, &mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut version = [0u8; 4];
        read_exact_or_truncated(reader, &mut version)?;
        let version = u32::from_le_bytes(version);
        if !(TRACE_VERSION_V1..=TRACE_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        if version >= 3 {
            // The payload is checksummed: read it whole and verify **before**
            // decoding anything, so corruption (including a flipped run
            // count, which could otherwise drive a huge expansion) is a
            // typed error before any event is materialized.
            let mut checksum = [0u8; 8];
            read_exact_or_truncated(reader, &mut checksum)?;
            let expected = u64::from_le_bytes(checksum);
            let mut payload = Vec::new();
            reader.read_to_end(&mut payload)?;
            let found = fnv1a64(&payload);
            if found != expected {
                return Err(TraceError::Checksum { expected, found });
            }
            let mut slice: &[u8] = &payload;
            let events = Self::decode_events(&mut slice, version)?;
            // The checksum covers exactly the written payload, so verified
            // trailing bytes can only mean an encoder bug — still reject.
            if !slice.is_empty() {
                return Err(TraceError::TrailingData);
            }
            Ok(Self { events })
        } else {
            let events = Self::decode_events(reader, version)?;
            // A trace is the whole input: bytes past the declared event
            // count mean corruption (torn write, concatenation).
            let mut probe = [0u8; 1];
            match reader.read(&mut probe) {
                Ok(0) => Ok(Self { events }),
                Ok(_) => Err(TraceError::TrailingData),
                Err(e) => Err(TraceError::Io(e)),
            }
        }
    }

    fn decode_events<R: Read>(reader: &mut R, version: u32) -> Result<Vec<TraceEvent>, TraceError> {
        let count = read_varint(reader)?;
        // Decoder safety bound, not a format limit: v3 run events mean a few
        // bytes can legitimately declare millions of events, so the declared
        // count is the only lever bounding decoder memory. 2^28 events is
        // ~100× the largest trace in the repo while capping a crafted or
        // corrupt stream at a few GB instead of an OOM abort. (Positions are
        // 32-bit throughout the detection stack anyway.)
        if count >= 1 << 28 {
            return Err(TraceError::FieldOverflow);
        }
        let count = usize::try_from(count).map_err(|_| TraceError::FieldOverflow)?;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        let mut codec = Codec::new(version);
        while events.len() < count {
            decode_into(reader, &mut codec, &mut events, count)?;
        }
        Ok(events)
    }

    /// Serializes the trace to an in-memory buffer (current format version).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Serializes the trace to an in-memory buffer in an explicit format
    /// version (see [`Trace::write_to_versioned`]).
    pub fn to_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, TraceError> {
        let mut buf = Vec::new();
        self.write_to_versioned(&mut buf, version)?;
        Ok(buf)
    }

    /// Deserializes a trace from an in-memory buffer.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, TraceError> {
        Self::read_from(&mut bytes)
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut file)?;
        file.flush()?;
        Ok(())
    }

    /// Reads a trace from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut file)
    }

    /// Checks the canonical serial-DF ordering invariant (see the module
    /// docs) and returns the per-construct totals.
    pub fn validate(&self) -> Result<TraceCounts, TraceError> {
        let (counts, complete) = self.validate_prefix()?;
        if !complete {
            return Err(TraceError::Invariant {
                index: self.events.len(),
                message: "stream ended before ProgramEnd".to_string(),
            });
        }
        Ok(counts)
    }

    /// Checks that the stream is a **prefix** of some canonical serial-DF
    /// trace — the append-aware variant of [`Trace::validate`]. A growing
    /// recorded execution is canonical at every cut point, so a detection
    /// store can validate, freeze and detect on a trace that has not reached
    /// its `ProgramEnd` yet and keep appending events to it.
    ///
    /// Returns the per-construct totals of the prefix plus `true` when the
    /// stream is actually complete (ends with `ProgramEnd`).
    pub fn validate_prefix(&self) -> Result<(TraceCounts, bool), TraceError> {
        let mut validator = PrefixValidator::new();
        validator.extend(&self.events)
    }

    /// Appends every event of `suffix`, in order. Like [`Trace::push`], the
    /// canonical ordering is not checked here — call
    /// [`Trace::validate_prefix`] (or [`Trace::validate`]) on the extended
    /// stream.
    pub fn extend_events(&mut self, suffix: &[TraceEvent]) {
        self.events.extend_from_slice(suffix);
    }

    /// Removes and returns every event, leaving the trace empty — the
    /// drain used by the [`EventSource`](crate::source::EventSource)
    /// implementation, which hands a whole recorded trace to a streaming
    /// consumer in one chunk.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Replays a slice of events through a borrowed observer — the event-slice
/// form of [`Trace::replay_into`], used by incremental consumers that feed
/// an observer only the suffix appended since the last replay.
pub fn replay_events<O: Observer + ?Sized>(events: &[TraceEvent], observer: &mut O) {
    for event in events {
        match event {
            TraceEvent::ProgramStart { root, first } => observer.on_program_start(*root, *first),
            TraceEvent::StrandStart { strand, function } => {
                observer.on_strand_start(*strand, *function)
            }
            TraceEvent::Spawn(ev) => observer.on_spawn(ev),
            TraceEvent::CreateFuture(ev) => observer.on_create_future(ev),
            TraceEvent::Return { function, last } => observer.on_return(*function, *last),
            TraceEvent::Sync(ev) => observer.on_sync(ev),
            TraceEvent::GetFuture(ev) => observer.on_get_future(ev),
            TraceEvent::Read { strand, addr, size } => {
                observer.on_read(*strand, *addr, *size as usize)
            }
            TraceEvent::Write { strand, addr, size } => {
                observer.on_write(*strand, *addr, *size as usize)
            }
            TraceEvent::ProgramEnd { last } => observer.on_program_end(*last),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Shared encode/decode state for the delta fields of v2 streams: the
/// previous access's strand id and byte address (both start at 0). In v1
/// mode the codec is stateless and fields are absolute.
#[derive(Debug)]
struct Codec {
    delta: bool,
    runs: bool,
    prev_strand: u32,
    prev_addr: u64,
}

impl Codec {
    fn new(version: u32) -> Self {
        Self {
            delta: version >= 2,
            runs: version >= 3,
            prev_strand: 0,
            prev_addr: 0,
        }
    }

    fn encode_access_fields<W: Write>(
        &mut self,
        w: &mut W,
        strand: StrandId,
        addr: MemAddr,
    ) -> Result<(), TraceError> {
        if self.delta {
            // Wrapping deltas round-trip every value without overflow
            // handling; zigzag keeps small negative deltas small.
            let strand_delta = strand.0.wrapping_sub(self.prev_strand) as i32;
            let addr_delta = addr.0.wrapping_sub(self.prev_addr) as i64;
            write_varint(w, zigzag64(i64::from(strand_delta)))?;
            write_varint(w, zigzag64(addr_delta))?;
            self.prev_strand = strand.0;
            self.prev_addr = addr.0;
        } else {
            write_varint(w, strand.0.into())?;
            write_varint(w, addr.0)?;
        }
        Ok(())
    }

    fn decode_access_fields<R: Read>(
        &mut self,
        r: &mut R,
    ) -> Result<(StrandId, MemAddr), TraceError> {
        if self.delta {
            let strand_delta = unzigzag64(read_varint(r)?);
            let strand_delta =
                i32::try_from(strand_delta).map_err(|_| TraceError::FieldOverflow)?;
            let addr_delta = unzigzag64(read_varint(r)?);
            let strand = self.prev_strand.wrapping_add(strand_delta as u32);
            let addr = self.prev_addr.wrapping_add(addr_delta as u64);
            self.prev_strand = strand;
            self.prev_addr = addr;
            Ok((StrandId(strand), MemAddr(addr)))
        } else {
            Ok((StrandId(read_u32(r)?), MemAddr(read_varint(r)?)))
        }
    }
}

#[inline]
fn zigzag64(v: i64) -> u64 {
    // Shift in u64 space so extreme deltas cannot overflow the signed shift.
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

#[inline]
fn unzigzag64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

const OP_PROGRAM_START: u8 = 0;
const OP_STRAND_START: u8 = 1;
const OP_SPAWN: u8 = 2;
const OP_CREATE_FUTURE: u8 = 3;
const OP_RETURN: u8 = 4;
const OP_SYNC: u8 = 5;
const OP_GET_FUTURE: u8 = 6;
const OP_READ: u8 = 7;
const OP_WRITE: u8 = 8;
const OP_PROGRAM_END: u8 = 9;
// v3 only: a constant-stride burst of ≥ MIN_ACCESS_RUN same-strand,
// same-size accesses, stored as (first strand/addr via the delta codec,
// size, count, zigzag stride).
const OP_READ_RUN: u8 = 10;
const OP_WRITE_RUN: u8 = 11;

/// FNV-1a 64 — the payload checksum of v3 streams (and of the `FRDIDX`
/// sidecar files of `futurerd-store`, which reuse this codec family).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Length of the maximal run-length-encodable access burst starting at
/// `events[i]`: same event kind (all reads or all writes), same strand, same
/// size, and addresses advancing by one constant (wrapping) stride.
fn access_run_len(events: &[TraceEvent], i: usize) -> usize {
    let (is_write, strand, addr, size) = match events[i] {
        TraceEvent::Read { strand, addr, size } => (false, strand, addr, size),
        TraceEvent::Write { strand, addr, size } => (true, strand, addr, size),
        _ => return 1,
    };
    let mut stride: Option<u64> = None;
    let mut prev = addr.0;
    let mut len = 1;
    for event in &events[i + 1..] {
        let (w, s, a, n) = match *event {
            TraceEvent::Read { strand, addr, size } => (false, strand, addr, size),
            TraceEvent::Write { strand, addr, size } => (true, strand, addr, size),
            _ => break,
        };
        if w != is_write || s != strand || n != size {
            break;
        }
        let step = a.0.wrapping_sub(prev);
        match stride {
            None => stride = Some(step),
            Some(st) if st == step => {}
            Some(_) => break,
        }
        prev = a.0;
        len += 1;
    }
    len
}

/// Encodes one access burst (all reads or all writes, validated by the
/// caller via [`access_run_len`]) as a single run event.
fn encode_access_run<W: Write>(
    w: &mut W,
    run: &[TraceEvent],
    codec: &mut Codec,
) -> Result<(), TraceError> {
    let (op, strand, addr, size) = match run[0] {
        TraceEvent::Read { strand, addr, size } => (OP_READ_RUN, strand, addr, size),
        TraceEvent::Write { strand, addr, size } => (OP_WRITE_RUN, strand, addr, size),
        _ => unreachable!("access_run_len only groups access events"),
    };
    let second = match run[1] {
        TraceEvent::Read { addr, .. } | TraceEvent::Write { addr, .. } => addr,
        _ => unreachable!("access_run_len only groups access events"),
    };
    let stride = second.0.wrapping_sub(addr.0);
    w.write_all(&[op])?;
    codec.encode_access_fields(w, strand, addr)?;
    write_varint(w, size.into())?;
    write_varint(w, run.len() as u64)?;
    write_varint(w, zigzag64(stride as i64))?;
    // The delta baseline continues from the *last* access of the run.
    codec.prev_addr = addr
        .0
        .wrapping_add(stride.wrapping_mul(run.len() as u64 - 1));
    Ok(())
}

fn write_varint<W: Write>(w: &mut W, mut value: u64) -> Result<(), TraceError> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        read_exact_or_truncated(r, &mut byte)?;
        let byte = byte[0];
        if shift >= 63 && byte > 1 {
            return Err(TraceError::FieldOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::FieldOverflow);
        }
    }
}

fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceError> {
    u32::try_from(read_varint(r)?).map_err(|_| TraceError::FieldOverflow)
}

fn encode_event<W: Write>(
    w: &mut W,
    event: &TraceEvent,
    codec: &mut Codec,
) -> Result<(), TraceError> {
    match event {
        TraceEvent::ProgramStart { root, first } => {
            w.write_all(&[OP_PROGRAM_START])?;
            write_varint(w, root.0.into())?;
            write_varint(w, first.0.into())?;
        }
        TraceEvent::StrandStart { strand, function } => {
            w.write_all(&[OP_STRAND_START])?;
            write_varint(w, strand.0.into())?;
            write_varint(w, function.0.into())?;
        }
        TraceEvent::Spawn(ev) => {
            w.write_all(&[OP_SPAWN])?;
            for field in [
                ev.parent.0,
                ev.child.0,
                ev.fork_strand.0,
                ev.cont_strand.0,
                ev.child_first_strand.0,
            ] {
                write_varint(w, field.into())?;
            }
        }
        TraceEvent::CreateFuture(ev) => {
            w.write_all(&[OP_CREATE_FUTURE])?;
            for field in [
                ev.parent.0,
                ev.child.0,
                ev.creator_strand.0,
                ev.cont_strand.0,
                ev.child_first_strand.0,
            ] {
                write_varint(w, field.into())?;
            }
        }
        TraceEvent::Return { function, last } => {
            w.write_all(&[OP_RETURN])?;
            write_varint(w, function.0.into())?;
            write_varint(w, last.0.into())?;
        }
        TraceEvent::Sync(ev) => {
            w.write_all(&[OP_SYNC])?;
            for field in [
                ev.parent.0,
                ev.child.0,
                ev.pre_join_strand.0,
                ev.join_strand.0,
                ev.child_last_strand.0,
                ev.fork.pre_fork_strand.0,
                ev.fork.child_first_strand.0,
                ev.fork.cont_strand.0,
            ] {
                write_varint(w, field.into())?;
            }
        }
        TraceEvent::GetFuture(ev) => {
            w.write_all(&[OP_GET_FUTURE])?;
            for field in [
                ev.parent.0,
                ev.future.0,
                ev.pre_get_strand.0,
                ev.getter_strand.0,
                ev.future_last_strand.0,
                ev.prior_touches,
            ] {
                write_varint(w, field.into())?;
            }
        }
        TraceEvent::Read { strand, addr, size } => {
            w.write_all(&[OP_READ])?;
            codec.encode_access_fields(w, *strand, *addr)?;
            write_varint(w, (*size).into())?;
        }
        TraceEvent::Write { strand, addr, size } => {
            w.write_all(&[OP_WRITE])?;
            codec.encode_access_fields(w, *strand, *addr)?;
            write_varint(w, (*size).into())?;
        }
        TraceEvent::ProgramEnd { last } => {
            w.write_all(&[OP_PROGRAM_END])?;
            write_varint(w, last.0.into())?;
        }
    }
    Ok(())
}

/// Decodes the next stored event into `events`. Plain events push one
/// element; a v3 run event expands into its `count` accesses. `declared` is
/// the stream's declared total event count — a run that would overshoot it
/// is corrupt and rejected before anything is expanded.
fn decode_into<R: Read>(
    r: &mut R,
    codec: &mut Codec,
    events: &mut Vec<TraceEvent>,
    declared: usize,
) -> Result<(), TraceError> {
    let mut op = [0u8; 1];
    read_exact_or_truncated(r, &mut op)?;
    let op = op[0];
    if op == OP_READ_RUN || op == OP_WRITE_RUN {
        if !codec.runs {
            return Err(TraceError::BadOpcode(op));
        }
        let (strand, addr) = codec.decode_access_fields(r)?;
        let size = read_u32(r)?;
        let count = read_varint(r)?;
        let stride = unzigzag64(read_varint(r)?) as u64;
        let count = usize::try_from(count).map_err(|_| TraceError::FieldOverflow)?;
        if count == 0 || count > declared - events.len() {
            return Err(TraceError::TrailingData);
        }
        for k in 0..count as u64 {
            let addr = MemAddr(addr.0.wrapping_add(stride.wrapping_mul(k)));
            events.push(if op == OP_READ_RUN {
                TraceEvent::Read { strand, addr, size }
            } else {
                TraceEvent::Write { strand, addr, size }
            });
        }
        codec.prev_addr = addr.0.wrapping_add(stride.wrapping_mul(count as u64 - 1));
        return Ok(());
    }
    events.push(decode_event_body(op, r, codec)?);
    Ok(())
}

fn decode_event_body<R: Read>(
    op: u8,
    r: &mut R,
    codec: &mut Codec,
) -> Result<TraceEvent, TraceError> {
    Ok(match op {
        OP_PROGRAM_START => TraceEvent::ProgramStart {
            root: FunctionId(read_u32(r)?),
            first: StrandId(read_u32(r)?),
        },
        OP_STRAND_START => TraceEvent::StrandStart {
            strand: StrandId(read_u32(r)?),
            function: FunctionId(read_u32(r)?),
        },
        OP_SPAWN => TraceEvent::Spawn(SpawnEvent {
            parent: FunctionId(read_u32(r)?),
            child: FunctionId(read_u32(r)?),
            fork_strand: StrandId(read_u32(r)?),
            cont_strand: StrandId(read_u32(r)?),
            child_first_strand: StrandId(read_u32(r)?),
        }),
        OP_CREATE_FUTURE => TraceEvent::CreateFuture(CreateFutureEvent {
            parent: FunctionId(read_u32(r)?),
            child: FunctionId(read_u32(r)?),
            creator_strand: StrandId(read_u32(r)?),
            cont_strand: StrandId(read_u32(r)?),
            child_first_strand: StrandId(read_u32(r)?),
        }),
        OP_RETURN => TraceEvent::Return {
            function: FunctionId(read_u32(r)?),
            last: StrandId(read_u32(r)?),
        },
        OP_SYNC => TraceEvent::Sync(SyncEvent {
            parent: FunctionId(read_u32(r)?),
            child: FunctionId(read_u32(r)?),
            pre_join_strand: StrandId(read_u32(r)?),
            join_strand: StrandId(read_u32(r)?),
            child_last_strand: StrandId(read_u32(r)?),
            fork: ForkInfo {
                pre_fork_strand: StrandId(read_u32(r)?),
                child_first_strand: StrandId(read_u32(r)?),
                cont_strand: StrandId(read_u32(r)?),
            },
        }),
        OP_GET_FUTURE => TraceEvent::GetFuture(GetFutureEvent {
            parent: FunctionId(read_u32(r)?),
            future: FunctionId(read_u32(r)?),
            pre_get_strand: StrandId(read_u32(r)?),
            getter_strand: StrandId(read_u32(r)?),
            future_last_strand: StrandId(read_u32(r)?),
            prior_touches: read_u32(r)?,
        }),
        OP_READ => {
            let (strand, addr) = codec.decode_access_fields(r)?;
            TraceEvent::Read {
                strand,
                addr,
                size: read_u32(r)?,
            }
        }
        OP_WRITE => {
            let (strand, addr) = codec.decode_access_fields(r)?;
            TraceEvent::Write {
                strand,
                addr,
                size: read_u32(r)?,
            }
        }
        OP_PROGRAM_END => TraceEvent::ProgramEnd {
            last: StrandId(read_u32(r)?),
        },
        other => return Err(TraceError::BadOpcode(other)),
    })
}

// ---------------------------------------------------------------------------
// Serial-DF invariant validation
// ---------------------------------------------------------------------------

/// What the validator expects the next event to be when the stream is
/// between constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Any construct/access of the currently executing strand.
    Executing,
    /// `StrandStart(strand, function)` that pushes a new frame.
    EnterFrame(StrandId, FunctionId),
    /// `StrandStart(strand, function)` that resumes the current frame.
    Resume(StrandId, FunctionId),
    /// `ProgramEnd { last }`.
    End(StrandId),
    /// Nothing: the stream is complete.
    Done,
}

/// How a suspended caller resumes once the eagerly executed child returns.
#[derive(Debug)]
enum Suspension {
    Spawned {
        parent: FunctionId,
        cont: StrandId,
        fork: ForkInfo,
    },
    Created {
        parent: FunctionId,
        cont: StrandId,
    },
}

#[derive(Debug)]
struct PendingJoin {
    child: FunctionId,
    fork: ForkInfo,
    child_last: StrandId,
}

#[derive(Debug)]
struct VFrame {
    pending: Vec<PendingJoin>,
}

#[derive(Debug)]
struct FutureState {
    last: StrandId,
    touches: u32,
}

#[derive(Debug)]
struct Validator {
    next_strand: u32,
    next_function: u32,
    expect: Expect,
    current: Option<(FunctionId, StrandId)>,
    frames: Vec<VFrame>,
    suspensions: Vec<Suspension>,
    futures: HashMap<FunctionId, FutureState>,
    counts: TraceCounts,
}

impl Default for Validator {
    fn default() -> Self {
        Self {
            next_strand: 0,
            next_function: 0,
            expect: Expect::Executing,
            current: None,
            frames: Vec::new(),
            suspensions: Vec::new(),
            futures: HashMap::new(),
            counts: TraceCounts::default(),
        }
    }
}

/// Incremental canonical-prefix validation: the state of
/// [`Trace::validate_prefix`] kept alive between appends.
///
/// A consumer of a *growing* event stream (a detection session ingesting
/// chunks as an execution runs) feeds each chunk through
/// [`extend`](PrefixValidator::extend) exactly once — total validation work
/// stays linear in the stream length no matter how many chunks it arrives
/// in, instead of quadratic from revalidating the whole prefix per append.
///
/// ```
/// use futurerd_dag::trace::{PrefixValidator, Trace, TraceEvent};
/// use futurerd_dag::{FunctionId, StrandId};
///
/// let mut t = Trace::new();
/// t.push(TraceEvent::ProgramStart { root: FunctionId(0), first: StrandId(0) });
/// t.push(TraceEvent::StrandStart { strand: StrandId(0), function: FunctionId(0) });
/// t.push(TraceEvent::Return { function: FunctionId(0), last: StrandId(0) });
/// t.push(TraceEvent::ProgramEnd { last: StrandId(0) });
///
/// let mut v = PrefixValidator::new();
/// for event in t.events() {
///     // One event at a time is the worst case — still linear overall.
///     let (_, complete) = v.extend(std::slice::from_ref(event)).unwrap();
///     assert_eq!(complete, v.is_complete());
/// }
/// assert!(v.is_complete());
/// assert_eq!(v.position(), t.len());
/// ```
#[derive(Debug, Default)]
pub struct PrefixValidator {
    inner: Validator,
    position: usize,
    poisoned: bool,
}

impl PrefixValidator {
    /// A validator that has accepted no events yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events accepted so far — the stream position the next
    /// [`extend`](PrefixValidator::extend) continues from.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Per-construct totals of the accepted prefix.
    pub fn counts(&self) -> TraceCounts {
        self.inner.counts
    }

    /// True once the stream has reached its `ProgramEnd`.
    pub fn is_complete(&self) -> bool {
        self.inner.expect == Expect::Done
    }

    /// Validates the next chunk of the stream, continuing from where the
    /// previous call stopped. Returns the totals of the whole accepted
    /// prefix plus whether the stream is now complete.
    ///
    /// On an invariant failure the reported index is the *global* stream
    /// position of the offending event, and the validator is poisoned:
    /// every later call returns the same class of error instead of
    /// accepting events after a known-corrupt point.
    pub fn extend(&mut self, events: &[TraceEvent]) -> Result<(TraceCounts, bool), TraceError> {
        if self.poisoned {
            return Err(TraceError::Invariant {
                index: self.position,
                message: "stream already failed validation at this position".to_string(),
            });
        }
        for event in events {
            if let Err(message) = self.inner.step(self.position, event) {
                self.poisoned = true;
                return Err(TraceError::Invariant {
                    index: self.position,
                    message,
                });
            }
            self.position += 1;
        }
        Ok((self.inner.counts, self.is_complete()))
    }
}

impl Validator {
    fn current(&self) -> Result<(FunctionId, StrandId), String> {
        self.current
            .ok_or_else(|| "no strand executing".to_string())
    }

    fn require_executing(&self, what: &str) -> Result<(), String> {
        if self.expect != Expect::Executing {
            return Err(format!("{what} while expecting {:?}", self.expect));
        }
        Ok(())
    }

    fn alloc_strand(&mut self) -> StrandId {
        let id = StrandId(self.next_strand);
        self.next_strand += 1;
        self.counts.strands += 1;
        id
    }

    fn alloc_function(&mut self) -> FunctionId {
        let id = FunctionId(self.next_function);
        self.next_function += 1;
        self.counts.functions += 1;
        id
    }

    fn check_child_allocation(
        &mut self,
        parent: FunctionId,
        fork_strand: StrandId,
        child: FunctionId,
        child_first: StrandId,
        cont: StrandId,
        what: &str,
    ) -> Result<(), String> {
        let (cur_fn, cur_strand) = self.current()?;
        if parent != cur_fn {
            return Err(format!("{what} parent {parent} but {cur_fn} is executing"));
        }
        if fork_strand != cur_strand {
            return Err(format!(
                "{what} from strand {fork_strand} but {cur_strand} is executing"
            ));
        }
        let expected_child = self.alloc_function();
        let expected_first = self.alloc_strand();
        let expected_cont = self.alloc_strand();
        if child != expected_child {
            return Err(format!("{what} child {child}, expected {expected_child}"));
        }
        if child_first != expected_first {
            return Err(format!(
                "{what} child first strand {child_first}, expected {expected_first}"
            ));
        }
        if cont != expected_cont {
            return Err(format!(
                "{what} continuation {cont}, expected {expected_cont}"
            ));
        }
        Ok(())
    }

    fn step(&mut self, index: usize, event: &TraceEvent) -> Result<(), String> {
        if self.expect == Expect::Done {
            return Err("event after ProgramEnd".to_string());
        }
        match event {
            TraceEvent::ProgramStart { root, first } => {
                if index != 0 {
                    return Err("ProgramStart not the first event".to_string());
                }
                let expected_root = self.alloc_function();
                let expected_first = self.alloc_strand();
                if *root != expected_root || *first != expected_first {
                    return Err(format!(
                        "program must start at {expected_root}/{expected_first}, got {root}/{first}"
                    ));
                }
                self.expect = Expect::EnterFrame(*first, *root);
            }
            TraceEvent::StrandStart { strand, function } => match self.expect {
                Expect::EnterFrame(s, f) => {
                    if (*strand, *function) != (s, f) {
                        return Err(format!(
                            "expected child strand start {s}/{f}, got {strand}/{function}"
                        ));
                    }
                    self.frames.push(VFrame {
                        pending: Vec::new(),
                    });
                    self.current = Some((f, s));
                    self.expect = Expect::Executing;
                }
                Expect::Resume(s, f) => {
                    if (*strand, *function) != (s, f) {
                        return Err(format!(
                            "expected resumption {s}/{f}, got {strand}/{function}"
                        ));
                    }
                    self.current = Some((f, s));
                    self.expect = Expect::Executing;
                }
                _ => return Err(format!("unexpected StrandStart({strand}, {function})")),
            },
            TraceEvent::Spawn(ev) => {
                self.require_executing("Spawn")?;
                self.check_child_allocation(
                    ev.parent,
                    ev.fork_strand,
                    ev.child,
                    ev.child_first_strand,
                    ev.cont_strand,
                    "Spawn",
                )?;
                self.counts.spawns += 1;
                self.suspensions.push(Suspension::Spawned {
                    parent: ev.parent,
                    cont: ev.cont_strand,
                    fork: ForkInfo {
                        pre_fork_strand: ev.fork_strand,
                        child_first_strand: ev.child_first_strand,
                        cont_strand: ev.cont_strand,
                    },
                });
                self.expect = Expect::EnterFrame(ev.child_first_strand, ev.child);
            }
            TraceEvent::CreateFuture(ev) => {
                self.require_executing("CreateFuture")?;
                self.check_child_allocation(
                    ev.parent,
                    ev.creator_strand,
                    ev.child,
                    ev.child_first_strand,
                    ev.cont_strand,
                    "CreateFuture",
                )?;
                self.counts.creates += 1;
                self.suspensions.push(Suspension::Created {
                    parent: ev.parent,
                    cont: ev.cont_strand,
                });
                self.expect = Expect::EnterFrame(ev.child_first_strand, ev.child);
            }
            TraceEvent::Return { function, last } => {
                self.require_executing("Return")?;
                let (cur_fn, cur_strand) = self.current()?;
                if *function != cur_fn || *last != cur_strand {
                    return Err(format!(
                        "Return({function}, {last}) but {cur_fn} is executing strand {cur_strand}"
                    ));
                }
                let frame = self.frames.pop().expect("frame stack tracks current");
                if !frame.pending.is_empty() {
                    return Err(format!(
                        "{function} returned with {} unjoined spawned children (missing implicit sync)",
                        frame.pending.len()
                    ));
                }
                match self.suspensions.pop() {
                    Some(Suspension::Spawned { parent, cont, fork }) => {
                        self.frames
                            .last_mut()
                            .expect("spawned child has a parent frame")
                            .pending
                            .push(PendingJoin {
                                child: *function,
                                fork,
                                child_last: *last,
                            });
                        self.expect = Expect::Resume(cont, parent);
                    }
                    Some(Suspension::Created { parent, cont }) => {
                        self.futures.insert(
                            *function,
                            FutureState {
                                last: *last,
                                touches: 0,
                            },
                        );
                        self.expect = Expect::Resume(cont, parent);
                    }
                    None => {
                        // The root returned.
                        self.expect = Expect::End(*last);
                    }
                }
                self.current = None;
            }
            TraceEvent::Sync(ev) => {
                self.require_executing("Sync")?;
                let (cur_fn, cur_strand) = self.current()?;
                if ev.parent != cur_fn || ev.pre_join_strand != cur_strand {
                    return Err(format!(
                        "Sync in {} from strand {} but {cur_fn}/{cur_strand} is executing",
                        ev.parent, ev.pre_join_strand
                    ));
                }
                let expected_join = self.alloc_strand();
                if ev.join_strand != expected_join {
                    return Err(format!(
                        "Sync join strand {}, expected {expected_join}",
                        ev.join_strand
                    ));
                }
                let frame = self.frames.last_mut().expect("frame stack tracks current");
                let Some(pending) = frame.pending.pop() else {
                    return Err("Sync with no spawned child pending".to_string());
                };
                if pending.child != ev.child
                    || pending.child_last != ev.child_last_strand
                    || pending.fork != ev.fork
                {
                    return Err(format!(
                        "Sync joins {} (last {}), but innermost pending child is {} (last {})",
                        ev.child, ev.child_last_strand, pending.child, pending.child_last
                    ));
                }
                self.counts.syncs += 1;
                self.expect = Expect::Resume(ev.join_strand, ev.parent);
            }
            TraceEvent::GetFuture(ev) => {
                self.require_executing("GetFuture")?;
                let (cur_fn, cur_strand) = self.current()?;
                if ev.parent != cur_fn || ev.pre_get_strand != cur_strand {
                    return Err(format!(
                        "GetFuture in {} from strand {} but {cur_fn}/{cur_strand} is executing",
                        ev.parent, ev.pre_get_strand
                    ));
                }
                let expected_getter = self.alloc_strand();
                if ev.getter_strand != expected_getter {
                    return Err(format!(
                        "GetFuture getter strand {}, expected {expected_getter}",
                        ev.getter_strand
                    ));
                }
                let Some(fut) = self.futures.get_mut(&ev.future) else {
                    return Err(format!("GetFuture of {} which is not a future", ev.future));
                };
                if fut.last != ev.future_last_strand {
                    return Err(format!(
                        "GetFuture of {} claims last strand {}, recorded {}",
                        ev.future, ev.future_last_strand, fut.last
                    ));
                }
                if fut.touches != ev.prior_touches {
                    return Err(format!(
                        "GetFuture of {} claims {} prior touches, observed {}",
                        ev.future, ev.prior_touches, fut.touches
                    ));
                }
                fut.touches += 1;
                self.counts.gets += 1;
                self.expect = Expect::Resume(ev.getter_strand, ev.parent);
            }
            TraceEvent::Read { strand, .. } => {
                self.require_executing("Read")?;
                let (_, cur_strand) = self.current()?;
                if *strand != cur_strand {
                    return Err(format!(
                        "Read attributed to {strand} while {cur_strand} is executing"
                    ));
                }
                self.counts.reads += 1;
            }
            TraceEvent::Write { strand, .. } => {
                self.require_executing("Write")?;
                let (_, cur_strand) = self.current()?;
                if *strand != cur_strand {
                    return Err(format!(
                        "Write attributed to {strand} while {cur_strand} is executing"
                    ));
                }
                self.counts.writes += 1;
            }
            TraceEvent::ProgramEnd { last } => {
                let Expect::End(expected) = self.expect else {
                    return Err("ProgramEnd before the root returned".to_string());
                };
                if *last != expected {
                    return Err(format!("ProgramEnd names {last}, root ended on {expected}"));
                }
                self.expect = Expect::Done;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical trace of: root spawns a child, both access memory,
    /// root syncs.
    fn fork_join_trace() -> Trace {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let fork = ForkInfo {
            pre_fork_strand: StrandId(0),
            child_first_strand: StrandId(1),
            cont_strand: StrandId(2),
        };
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: child,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: child,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Sync(SyncEvent {
            parent: root,
            child,
            pre_join_strand: StrandId(2),
            join_strand: StrandId(3),
            child_last_strand: StrandId(1),
            fork,
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: root,
        });
        t.push(TraceEvent::Return {
            function: root,
            last: StrandId(3),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        t
    }

    #[test]
    fn fork_join_trace_validates_with_expected_counts() {
        let counts = fork_join_trace().validate().expect("valid trace");
        assert_eq!(counts.functions, 2);
        assert_eq!(counts.strands, 4);
        assert_eq!(counts.spawns, 1);
        assert_eq!(counts.syncs, 1);
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
        assert_eq!(counts.accesses(), 2);
        assert_eq!(counts.parallel_constructs(), 1);
    }

    #[test]
    fn codec_round_trips_bytes() {
        let t = fork_join_trace();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("decodes");
        assert_eq!(t, back);
    }

    #[test]
    fn older_streams_remain_readable_and_equivalent() {
        let t = fork_join_trace();
        let v1 = t.to_bytes_versioned(TRACE_VERSION_V1).expect("v1 encodes");
        let v2 = t.to_bytes_versioned(TRACE_VERSION_V2).expect("v2 encodes");
        let v3 = t.to_bytes_versioned(TRACE_VERSION).expect("v3 encodes");
        assert_eq!(v3, t.to_bytes(), "write_to defaults to the v3 format");
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(v2[8..12].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(v3[8..12].try_into().unwrap()), 3);
        assert_ne!(v1, v2, "the delta encoding changes the byte stream");
        assert_ne!(v2, v3, "the checksum header changes the byte stream");
        for bytes in [v1, v2, v3] {
            assert_eq!(Trace::from_bytes(&bytes).expect("decodes"), t);
        }
    }

    #[test]
    fn writer_rejects_unknown_versions() {
        let t = fork_join_trace();
        assert!(matches!(
            t.to_bytes_versioned(4),
            Err(TraceError::UnsupportedVersion(4))
        ));
    }

    #[test]
    fn v3_collapses_constant_stride_bursts_and_round_trips() {
        // Mixed burst shapes: a forward sweep, a stride-0 repeat, a backward
        // sweep, a run interrupted by a non-access event, and sub-threshold
        // pairs that must stay plain events.
        let mut t = Trace::new();
        for i in 0..100u64 {
            t.push(TraceEvent::Read {
                strand: StrandId(3),
                addr: MemAddr(0x1000 + i * 4),
                size: 4,
            });
        }
        for _ in 0..10 {
            t.push(TraceEvent::Write {
                strand: StrandId(3),
                addr: MemAddr(0x40),
                size: 8,
            });
        }
        for i in 0..10u64 {
            t.push(TraceEvent::Read {
                strand: StrandId(3),
                addr: MemAddr(0x9000 - i * 16),
                size: 4,
            });
        }
        t.push(TraceEvent::Return {
            function: FunctionId(0),
            last: StrandId(3),
        });
        t.push(TraceEvent::Read {
            strand: StrandId(3),
            addr: MemAddr(0x10),
            size: 4,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(3),
            addr: MemAddr(0x20),
            size: 2, // size change breaks the run
        });
        let v2 = t.to_bytes_versioned(TRACE_VERSION_V2).unwrap();
        let v3 = t.to_bytes_versioned(TRACE_VERSION).unwrap();
        assert!(
            v3.len() * 4 < v2.len(),
            "expected ≥4× shrink from run-length encoding: v2={} v3={}",
            v2.len(),
            v3.len()
        );
        assert_eq!(Trace::from_bytes(&v3).expect("v3 decodes"), t);
    }

    #[test]
    fn decoder_caps_declared_event_count() {
        // A crafted v3 stream with a *valid* checksum declaring 2^28 events
        // backed by a single run event must be rejected by the declared-count
        // safety bound before any expansion happens (typed error, no OOM).
        let mut payload = Vec::new();
        write_varint(&mut payload, 1 << 28).unwrap();
        payload.push(OP_READ_RUN);
        let mut codec = Codec::new(TRACE_VERSION);
        codec
            .encode_access_fields(&mut payload, StrandId(0), MemAddr(0))
            .unwrap();
        write_varint(&mut payload, 4).unwrap(); // size
        write_varint(&mut payload, 1 << 28).unwrap(); // run count
        write_varint(&mut payload, zigzag64(4)).unwrap(); // stride
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::FieldOverflow)
        ));
    }

    #[test]
    fn v3_detects_payload_bit_flips() {
        let mut bytes = fork_join_trace().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(
            matches!(
                Trace::from_bytes(&bytes),
                Err(TraceError::Checksum { .. }) | Err(TraceError::TrailingData)
            ),
            "flip must be caught by the checksum (or the layout check)"
        );
    }

    #[test]
    fn validate_prefix_accepts_every_canonical_cut() {
        let t = fork_join_trace();
        for cut in 0..=t.len() {
            let mut prefix = Trace::new();
            prefix.extend_events(&t.events()[..cut]);
            let (counts, complete) = prefix
                .validate_prefix()
                .unwrap_or_else(|e| panic!("prefix of {cut} events rejected: {e}"));
            assert_eq!(complete, cut == t.len());
            if cut < t.len() {
                assert!(prefix.validate().is_err(), "incomplete prefix of {cut}");
            } else {
                assert_eq!(counts, t.validate().expect("complete trace validates"));
            }
        }
    }

    #[test]
    fn validate_prefix_still_rejects_corrupt_streams() {
        let mut t = fork_join_trace();
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        assert!(t.validate_prefix().is_err());
    }

    #[test]
    fn delta_codec_round_trips_extreme_fields() {
        // Hand-built access runs with wild strand/address jumps (not a
        // canonical trace — the codec must round-trip regardless).
        let mut t = Trace::new();
        let patterns = [
            (0u32, 0u64),
            (u32::MAX, u64::MAX),
            (1, 0),
            (u32::MAX - 1, 1 << 63),
            (7, 0x1000),
            (7, 0x1004),
            (7, 0x0ffc),
        ];
        for (i, &(strand, addr)) in patterns.iter().enumerate() {
            let event = if i % 2 == 0 {
                TraceEvent::Read {
                    strand: StrandId(strand),
                    addr: MemAddr(addr),
                    size: 4,
                }
            } else {
                TraceEvent::Write {
                    strand: StrandId(strand),
                    addr: MemAddr(addr),
                    size: 8,
                }
            };
            t.push(event);
        }
        for version in [TRACE_VERSION_V1, TRACE_VERSION_V2, TRACE_VERSION] {
            let bytes = t.to_bytes_versioned(version).expect("encodes");
            assert_eq!(
                Trace::from_bytes(&bytes).expect("decodes"),
                t,
                "version {version}"
            );
        }
    }

    #[test]
    fn delta_encoding_shrinks_dense_access_runs() {
        // A long same-strand sequential sweep: the dominant shape of real
        // traces. v2 should be substantially smaller than v1.
        let mut t = Trace::new();
        for i in 0..10_000u64 {
            t.push(TraceEvent::Read {
                strand: StrandId(42),
                addr: MemAddr(0x4000_0000 + i * 4),
                size: 4,
            });
        }
        let v1 = t.to_bytes_versioned(TRACE_VERSION_V1).unwrap().len();
        let v2 = t.to_bytes_versioned(TRACE_VERSION_V2).unwrap().len();
        let v3 = t.to_bytes_versioned(TRACE_VERSION).unwrap().len();
        assert!(
            v2 * 10 < v1 * 6,
            "expected the delta encoding to shrink the stream by ≥40%: v1={v1} v2={v2}"
        );
        assert!(
            v3 < v2 / 100,
            "one run event should replace the whole sweep: v2={v2} v3={v3}"
        );
    }

    #[test]
    fn decoder_rejects_bad_magic() {
        let mut bytes = fork_join_trace().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn decoder_rejects_future_version() {
        let mut bytes = fork_join_trace().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn decoder_rejects_trailing_bytes() {
        // v3 payloads are checksummed, so an appended byte surfaces as a
        // checksum mismatch (verified before decode); the unchecksummed
        // formats report the trailing data itself.
        let mut bytes = fork_join_trace().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Checksum { .. })
        ));
        for version in [TRACE_VERSION_V1, TRACE_VERSION_V2] {
            let mut bytes = fork_join_trace().to_bytes_versioned(version).unwrap();
            bytes.push(0);
            assert!(
                matches!(Trace::from_bytes(&bytes), Err(TraceError::TrailingData)),
                "version {version}"
            );
        }
    }

    #[test]
    fn decoder_rejects_truncation_anywhere() {
        let bytes = fork_join_trace().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn replay_reproduces_the_callback_stream() {
        #[derive(Default)]
        struct Counter {
            spawns: usize,
            reads: usize,
            writes: usize,
            ends: usize,
        }
        impl Observer for Counter {
            fn on_spawn(&mut self, _ev: &SpawnEvent) {
                self.spawns += 1;
            }
            fn on_read(&mut self, _s: StrandId, _a: MemAddr, _n: usize) {
                self.reads += 1;
            }
            fn on_write(&mut self, _s: StrandId, _a: MemAddr, _n: usize) {
                self.writes += 1;
            }
            fn on_program_end(&mut self, _s: StrandId) {
                self.ends += 1;
            }
        }
        let c = fork_join_trace().replay(Counter::default());
        assert_eq!((c.spawns, c.reads, c.writes, c.ends), (1, 1, 1, 1));
    }

    #[test]
    fn validator_rejects_misattributed_access() {
        let mut t = fork_join_trace();
        // Rewrite the child's write to claim the continuation strand.
        let events = t.events.clone();
        t.events.clear();
        for ev in events {
            t.push(match ev {
                TraceEvent::Write { addr, size, .. } => TraceEvent::Write {
                    strand: StrandId(2),
                    addr,
                    size,
                },
                other => other,
            });
        }
        assert!(matches!(
            t.validate(),
            Err(TraceError::Invariant { index: 4, .. })
        ));
    }

    #[test]
    fn validator_rejects_out_of_order_allocation() {
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root: FunctionId(0),
            first: StrandId(5),
        });
        assert!(t.validate().is_err());
    }

    #[test]
    fn validator_rejects_missing_program_end() {
        let mut t = fork_join_trace();
        t.events.pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validator_rejects_return_with_unjoined_children() {
        let t = fork_join_trace();
        // Drop the Sync and its join StrandStart: root now returns with a
        // pending (never joined) spawned child.
        let mut bad = Trace::new();
        for ev in t.events() {
            match ev {
                TraceEvent::Sync(_) => {}
                TraceEvent::StrandStart {
                    strand: StrandId(3),
                    ..
                } => {}
                TraceEvent::Return {
                    function: FunctionId(0),
                    ..
                } => bad.push(TraceEvent::Return {
                    function: FunctionId(0),
                    last: StrandId(2),
                }),
                TraceEvent::ProgramEnd { .. } => {
                    bad.push(TraceEvent::ProgramEnd { last: StrandId(2) })
                }
                other => bad.push(*other),
            }
        }
        let err = bad.validate().unwrap_err();
        assert!(
            err.to_string().contains("unjoined"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn single_touch_and_future_queries() {
        let t = fork_join_trace();
        assert!(!t.has_futures());
        assert!(t.is_single_touch());
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let back = read_varint(&mut &buf[..]).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let t = fork_join_trace();
        let path =
            std::env::temp_dir().join(format!("futurerd-trace-test-{}.bin", std::process::id()));
        t.save(&path).expect("save");
        let back = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }
}
