//! Offline stand-in for the subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! wrappers over `std::sync` primitives that expose `parking_lot`'s ergonomic
//! API: [`Mutex::lock`] returns a guard directly (poisoning is swallowed, as
//! `parking_lot` has no poisoning), and [`Condvar::wait`] takes the guard by
//! `&mut` reference. Swapping the real crate back in is a one-line manifest
//! change.
//!
//! ```
//! use parking_lot::{Condvar, Mutex};
//!
//! let m = Mutex::new(5);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 6);
//! let _cv = Condvar::new();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-tolerant API:
/// [`lock`](Mutex::lock) never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available, and returns a
    /// guard. A panic in another thread while holding the lock does not
    /// poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive access to the
    /// mutex itself).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
///
/// The guard wraps the `std` guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership of it — the `Option` is `None` only during
/// that handoff, never observably.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable operating on [`MutexGuard`]s by `&mut` reference.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified; the
    /// lock is re-acquired before returning. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Like [`wait`](Condvar::wait) but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(0u32);
        for _ in 0..10 {
            *m.lock() += 1;
        }
        assert_eq!(*m.lock(), 10);
        assert_eq!(m.into_inner(), 10);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1); // no poisoning
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
