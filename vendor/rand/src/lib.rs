//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of the `rand 0.8` surface the
//! code relies on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality for simulation purposes, and fully deterministic from the seed.
//! The exact value streams differ from the real `rand` crate (which is fine:
//! every consumer in this workspace derives *inputs* from a fixed seed and
//! compares results against references computed from the same inputs), but
//! the API is call-compatible so swapping the real crate back in is a
//! one-line manifest change.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let byte: u8 = rng.gen_range(b'a'..b'e');
//! assert!((b'a'..b'e').contains(&byte));
//! let again = StdRng::seed_from_u64(42).gen_range(b'a'..b'e');
//! assert_eq!(byte, again); // deterministic from the seed
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The base trait every generator
/// implements; the ergonomic sampling methods live on [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling values; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (uniform over the
    /// type's domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (a half-open `a..b` or inclusive
    /// `a..=b` range). Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        let (low, high) = range.inclusive_bounds();
        T::sample_inclusive(self.next_u64(), low, high)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps 64 random bits into `[low, high]` (both inclusive). Panics if
    /// `low > high`.
    fn sample_inclusive(bits: u64, low: Self, high: Self) -> Self;

    /// `value - 1`, used to turn an exclusive upper bound into an inclusive
    /// one. Panics (in debug) on underflow, which corresponds to an empty
    /// range.
    fn dec(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(bits: u64, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128) - (low as i128) + 1;
                let offset = (bits as i128).rem_euclid(span);
                ((low as i128) + offset) as $t
            }

            fn dec(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// The range as `(low, high)` inclusive bounds.
    fn inclusive_bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn inclusive_bounds(self) -> (T, T) {
        assert!(self.start < self.end, "gen_range: empty range");
        (self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn inclusive_bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Not cryptographically secure; deterministic from the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-4i64..5);
            assert!((-4..5).contains(&w));
            let x = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&x));
            let b = rng.gen_range(b'a'..b'e');
            assert!((b'a'..b'e').contains(&b));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads: {heads}");
    }
}
