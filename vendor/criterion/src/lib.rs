//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small but *real* benchmark harness behind criterion's API: it warms up,
//! auto-calibrates an iteration count per sample, collects `sample_size`
//! wall-clock samples, and reports mean / min / max per benchmark. It is not
//! a statistical replacement for criterion (no outlier classification, no
//! regression analysis) but produces stable, comparable numbers for the
//! paper-reproduction figures.
//!
//! Extras on top of the criterion surface:
//!
//! * Set `FUTURERD_BENCH_JSON=<path>` to also append results as JSON lines
//!   (one object per benchmark), used to check in benchmark baselines.
//! * Pass a substring as the first CLI argument (criterion-style filtering):
//!   only benchmark ids containing it are run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus a parameter
/// rendering, displayed as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// One timed sample set for a benchmark.
#[derive(Debug, Clone)]
struct Measurement {
    id: String,
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
    iters_per_sample: u64,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark identified by `id` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.render());
        if !self.criterion.matches_filter(&full_id) {
            return self;
        }
        let measurement = run_benchmark(
            &full_id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self.criterion.record(measurement);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, name.into());
        if !self.criterion.matches_filter(&full_id) {
            return self;
        }
        let measurement = run_benchmark(
            &full_id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self.criterion.record(measurement);
        self
    }

    /// Finishes the group. (Results are printed as they are measured.)
    pub fn finish(self) {}
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> Measurement {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // remembering the observed time per iteration for calibration.
    let mut per_iter = Duration::from_nanos(1);
    let warm_up_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = per_iter.max(b.elapsed / 1);
        if warm_up_start.elapsed() >= warm_up_time {
            break;
        }
    }

    // Calibrate: fit `sample_size` samples into the measurement budget.
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        min = min.min(per);
        max = max.max(per);
        total += per;
    }
    let mean = total / sample_size as u32;
    println!(
        "{id:<60} mean {:>12} min {:>12} max {:>12} ({sample_size} samples x {iters} iters)",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
    );
    Measurement {
        id: id.to_string(),
        mean,
        min,
        max,
        samples: sample_size,
        iters_per_sample: iters,
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The benchmark driver: collects settings, runs groups, reports results.
pub struct Criterion {
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument acts as a substring filter, mirroring
        // criterion's behaviour under `cargo bench -- <filter>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
            criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        if self.matches_filter(&id) {
            let m = run_benchmark(
                &id,
                10,
                Duration::from_millis(500),
                Duration::from_secs(1),
                &mut f,
            );
            self.record(m);
        }
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn record(&mut self, m: Measurement) {
        self.results.push(m);
    }

    /// Writes results as JSON lines to `FUTURERD_BENCH_JSON` if set. Called
    /// automatically by [`criterion_main!`]; harmless to call twice.
    pub fn final_summary(&mut self) {
        let Ok(path) = std::env::var("FUTURERD_BENCH_JSON") else {
            return;
        };
        if path.is_empty() || self.results.is_empty() {
            return;
        }
        let mut file = match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("criterion shim: cannot open {path}: {e}");
                return;
            }
        };
        for m in self.results.drain(..) {
            let line = format!(
                "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{},\"iters_per_sample\":{}}}\n",
                json_escape(&m.id),
                m.mean.as_nanos(),
                m.min.as_nanos(),
                m.max.as_nanos(),
                m.samples,
                m.iters_per_sample,
            );
            if let Err(e) = file.write_all(line.as_bytes()) {
                eprintln!("criterion shim: write to {path} failed: {e}");
                return;
            }
        }
    }
}

/// Declares a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks_and_records_results() {
        let mut c = Criterion {
            filter: None,
            results: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(2)
                .warm_up_time(Duration::from_micros(10))
                .measurement_time(Duration::from_micros(100));
            g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "unit/sum/10");
        assert!(c.results[0].mean > Duration::ZERO);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(1)
            .warm_up_time(Duration::from_micros(1))
            .measurement_time(Duration::from_micros(10));
        g.bench_function("other", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(c.results.is_empty());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
