//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) derive
//! macros.
//!
//! The build environment has no access to crates.io. The workspace's data
//! types carry `#[derive(Serialize, Deserialize)]` so that wiring in the real
//! `serde` (for JSON event-trace export, benchmark result serialization, ...)
//! is a manifest-only change later; until then these derives expand to
//! nothing. No code in the workspace currently calls serialization functions,
//! so the empty expansion is sound — if a future change does, the build
//! breaks loudly at the call site rather than silently misbehaving.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`. Accepts (and ignores) `#[serde]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`. Accepts (and ignores) `#[serde]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
